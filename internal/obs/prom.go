package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/ict-repro/mpid/internal/metrics"
)

// WriteProm writes a metrics snapshot in the OpenMetrics / Prometheus text
// exposition format: counters as "<name>_total", gauges as plain samples,
// and timers as summaries with p50/p95/p99 quantiles plus _sum and _count,
// terminated by the "# EOF" marker. Metric names are prefixed and sanitized
// ("rpc.calls" under prefix "mpid" becomes "mpid_rpc_calls"), and families
// are emitted in sorted name order so output is deterministic.
func WriteProm(w io.Writer, prefix string, snap metrics.Snapshot) error {
	var b strings.Builder
	for _, name := range sortedNames(len(snap.Counters), func(f func(string)) {
		for n := range snap.Counters {
			f(n)
		}
	}) {
		fam := PromName(prefix, name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
		fmt.Fprintf(&b, "%s_total %d\n", fam, snap.Counters[name])
	}
	for _, name := range sortedNames(len(snap.Gauges), func(f func(string)) {
		for n := range snap.Gauges {
			f(n)
		}
	}) {
		fam := PromName(prefix, name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", fam)
		fmt.Fprintf(&b, "%s %d\n", fam, snap.Gauges[name])
	}
	for _, name := range sortedNames(len(snap.Timers), func(f func(string)) {
		for n := range snap.Timers {
			f(n)
		}
	}) {
		fam := PromName(prefix, name)
		t := snap.Timers[name]
		fmt.Fprintf(&b, "# TYPE %s summary\n", fam)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", fam, promFloat(t.P50))
		fmt.Fprintf(&b, "%s{quantile=\"0.95\"} %s\n", fam, promFloat(t.P95))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", fam, promFloat(t.P99))
		fmt.Fprintf(&b, "%s_sum %s\n", fam, promFloat(t.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", fam, t.Count)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedNames(n int, each func(func(string))) []string {
	names := make([]string, 0, n)
	each(func(s string) { names = append(names, s) })
	sort.Strings(names)
	return names
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PromName sanitizes a registry metric name into a legal exposition metric
// name under the given prefix: every character outside [a-zA-Z0-9_:] maps
// to '_'.
func PromName(prefix, name string) string {
	var b strings.Builder
	if prefix != "" {
		b.WriteString(prefix)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// LintProm validates a text exposition body against the format rules
// WriteProm promises: a terminal "# EOF" line, well-formed sample lines
// whose values parse as numbers, a TYPE declaration (counter, gauge or
// summary) preceding every sample of its family, counter samples carrying
// the _total suffix, and summary samples restricted to quantile-labeled
// values, _sum and _count. It returns the first violation found.
func LintProm(data []byte) error {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
		return fmt.Errorf("obs: exposition does not end with \"# EOF\"")
	}
	types := make(map[string]string)
	for i, line := range lines[:len(lines)-1] {
		lineNo := i + 1
		if line == "" {
			return fmt.Errorf("obs: line %d: empty line", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
				}
				fam, kind := fields[2], fields[3]
				if !validPromName(fam) {
					return fmt.Errorf("obs: line %d: bad metric name %q", lineNo, fam)
				}
				if kind != "counter" && kind != "gauge" && kind != "summary" {
					return fmt.Errorf("obs: line %d: unsupported type %q", lineNo, kind)
				}
				if _, dup := types[fam]; dup {
					return fmt.Errorf("obs: line %d: duplicate TYPE for %q", lineNo, fam)
				}
				types[fam] = kind
			}
			continue // other comment lines (HELP, UNIT) pass through
		}
		name, value, ok := splitPromSample(line)
		if !ok {
			return fmt.Errorf("obs: line %d: malformed sample %q", lineNo, line)
		}
		base, labels := name, ""
		if j := strings.IndexByte(name, '{'); j >= 0 {
			base, labels = name[:j], name[j:]
		}
		if !validPromName(base) {
			return fmt.Errorf("obs: line %d: bad sample name %q", lineNo, base)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("obs: line %d: bad sample value %q", lineNo, value)
		}
		fam, suffix := promFamily(base, types)
		kind, declared := types[fam]
		if !declared {
			return fmt.Errorf("obs: line %d: sample %q has no TYPE declaration", lineNo, base)
		}
		switch kind {
		case "counter":
			if suffix != "_total" {
				return fmt.Errorf("obs: line %d: counter sample %q must end in _total", lineNo, base)
			}
		case "gauge":
			if suffix != "" || labels != "" {
				return fmt.Errorf("obs: line %d: unexpected gauge sample %q", lineNo, name)
			}
		case "summary":
			quantiled := labels != "" && strings.HasPrefix(labels, "{quantile=\"") && strings.HasSuffix(labels, "\"}")
			switch {
			case suffix == "" && quantiled:
			case (suffix == "_sum" || suffix == "_count") && labels == "":
			default:
				return fmt.Errorf("obs: line %d: unexpected summary sample %q", lineNo, name)
			}
		}
	}
	return nil
}

// promFamily strips a recognized sample suffix to find the declared family.
// Suffix stripping is only attempted when the stripped name was actually
// declared, so a gauge legitimately named "x_total" still lints.
func promFamily(base string, types map[string]string) (fam, suffix string) {
	for _, s := range []string{"_total", "_sum", "_count"} {
		if strings.HasSuffix(base, s) {
			if _, ok := types[strings.TrimSuffix(base, s)]; ok {
				return strings.TrimSuffix(base, s), s
			}
		}
	}
	return base, ""
}

// splitPromSample splits "name value" (optionally "name{labels} value").
func splitPromSample(line string) (name, value string, ok bool) {
	j := strings.LastIndexByte(line, ' ')
	if j <= 0 || j == len(line)-1 {
		return "", "", false
	}
	return line[:j], line[j+1:], true
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
