// Package obs is the post-mortem observability layer over the live stack:
// a flight recorder of typed structured events (internal/metrics answers
// "how much", internal/trace answers "where did the time go", this package
// answers "what happened, in what order"), a time-series sampler that turns
// the point-in-time metrics registry into bounded rate/saturation history
// for long soaks, OpenMetrics text exposition for external scrapers, and a
// named-check health model driving /healthz.
//
// Design points, following internal/metrics and internal/faults:
//
//   - a nil *Recorder, *Sampler or *Health is valid everywhere and records
//     nothing, so hot paths thread them unconditionally;
//   - the recorder is a bounded ring: a long-lived daemon keeps the newest
//     events at fixed memory, counting what it dropped;
//   - per-job child recorders stamp their job/tenant identity and fold
//     every event into the service-wide parent ring, the way
//     metrics.NewChild folds counters into fleet totals;
//   - events carry the trace span id of the work they describe, so a
//     flight-recorder line cross-links to the span in /trace.json.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event types the live stack emits. Free-form strings; these constants name
// the ones with dedicated emission points.
const (
	// EvJobAdmitted: the service accepted a submission (serve.Submit).
	EvJobAdmitted = "job.admitted"
	// EvJobRejected: admission control pushed a submission back (saturated
	// or draining).
	EvJobRejected = "job.rejected"
	// EvJobDone / EvJobFailed: a job finished.
	EvJobDone   = "job.done"
	EvJobFailed = "job.failed"
	// EvJobDrained: a still-unfinished job was canceled by a drain timeout.
	EvJobDrained = "job.drained"
	// EvServiceDrain: graceful shutdown began; no further admissions.
	EvServiceDrain = "service.drain"

	// EvAttemptScheduled: the jobtracker launched one task attempt. Span is
	// the scheduler-side attempt span.
	EvAttemptScheduled = "attempt.scheduled"
	// EvAttemptFailed / EvAttemptLost / EvAttemptSuperseded: the attempt
	// span ended with that status.
	EvAttemptFailed     = "attempt.failed"
	EvAttemptLost       = "attempt.lost"
	EvAttemptSuperseded = "attempt.superseded"

	// EvProbeVerdict: the liveness prober latched a dead verdict and the
	// engine acted on it.
	EvProbeVerdict = "probe.verdict"

	// EvRPCRetry / EvRPCDeadline: a hadooprpc call retried a transport
	// failure / exhausted its total time budget.
	EvRPCRetry    = "rpc.retry"
	EvRPCDeadline = "rpc.deadline"

	// EvFetchRetry: a jetty shuffle fetch retried against the same server.
	EvFetchRetry = "fetch.retry"
	// EvFetchFail: a shuffle fetch failed for good; the reducer reports it.
	// Span is the reducer-side fetch span.
	EvFetchFail = "fetch.fail"
	// EvFetchRedirect: the jobtracker re-queued a map whose output proved
	// unfetchable, redirecting reducers to the re-execution.
	EvFetchRedirect = "fetch.redirect"

	// EvFault: the injector fired. Span is the KindFault instant span.
	EvFault = "fault.injected"

	// EvSpill: a map task published its sorted partitions to the shuffle
	// store. Span is the map.spill phase span.
	EvSpill = "spill"
)

// Event is one flight-recorder entry: what happened, to which job/task
// attempt, and which trace span describes the same work.
type Event struct {
	// Seq is a process-wide emission sequence number: merged parent and
	// child rings interleave consistently by Seq.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	// Job and Tenant identify the owning submission in a multi-tenant
	// service; child recorders stamp them automatically.
	Job    int64  `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Task is the engine task key ("m3", "r1") when the event concerns one.
	Task string `json:"task,omitempty"`
	// Attempt is the 1-based execution count for attempt-scoped events.
	Attempt int `json:"attempt,omitempty"`
	// Span and Trace cross-link to the trace span describing the same work
	// (0 when the event has no span).
	Span  uint64 `json:"span,omitempty"`
	Trace uint64 `json:"trace,omitempty"`
	// Detail is free-form context: the error, the peer, the byte count.
	Detail string `json:"detail,omitempty"`
}

// DefaultEventCap bounds a recorder's ring when no capacity is given.
const DefaultEventCap = 4096

// eventSeq hands out process-wide event sequence numbers, mirroring the
// trace package's process-wide span ids: events from concurrent jobs folded
// into one service ring still have a total order.
var eventSeq atomic.Uint64

// Recorder is a bounded, concurrency-safe ring of events. All methods on a
// nil *Recorder are no-ops, matching the nil-registry contract.
type Recorder struct {
	parent *Recorder
	job    int64
	tenant string

	mu    sync.Mutex
	ring  []Event
	next  int // overwrite position once the ring is full
	cap   int
	total uint64 // lifetime emissions into this ring
}

// NewRecorder creates a recorder retaining the newest capacity events
// (DefaultEventCap when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &Recorder{cap: capacity}
}

// NewChild creates a recorder scoped to one job: every event it emits is
// stamped with the job id and tenant and also folded into r's ring (and
// transitively into r's own parent), the way metrics.NewChild feeds fleet
// totals. A nil receiver returns a fresh parentless recorder, so per-job
// code never branches.
func (r *Recorder) NewChild(job int64, tenant string) *Recorder {
	if r == nil {
		c := NewRecorder(0)
		c.job, c.tenant = job, tenant
		return c
	}
	return &Recorder{parent: r, job: job, tenant: tenant, cap: r.cap}
}

// Emit records one event, stamping Seq, Time (when zero) and the
// recorder's job/tenant identity (when unset), then folds it into every
// ancestor ring.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if e.Job == 0 {
		e.Job = r.job
	}
	if e.Tenant == "" {
		e.Tenant = r.tenant
	}
	e.Seq = eventSeq.Add(1)
	for rec := r; rec != nil; rec = rec.parent {
		rec.add(e)
	}
}

func (r *Recorder) add(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, e)
		return
	}
	r.ring[r.next] = e
	r.next = (r.next + 1) % r.cap
}

// Events snapshots the retained events, oldest first (by Seq).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	r.mu.Unlock()
	// Wraparound order is per-ring arrival order; concurrent emitters can
	// land slightly out of Seq order, so sort for a deterministic view.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// OfType returns the retained events of one type, oldest first.
func (r *Recorder) OfType(eventType string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Type == eventType {
			out = append(out, e)
		}
	}
	return out
}

// Len is the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Total is the lifetime number of events emitted into this ring.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped is how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.ring))
}

// RenderEvents renders events as the fixed-width table /events serves.
func RenderEvents(events []Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-12s %-20s %5s %-10s %-6s %3s %10s  %s\n",
		"seq", "time", "type", "job", "tenant", "task", "att", "span", "detail")
	for _, e := range events {
		job, att, span := "", "", ""
		if e.Job != 0 {
			job = fmt.Sprint(e.Job)
		}
		if e.Attempt != 0 {
			att = fmt.Sprint(e.Attempt)
		}
		if e.Span != 0 {
			span = fmt.Sprint(e.Span)
		}
		fmt.Fprintf(&b, "%-8d %-12s %-20s %5s %-10s %-6s %3s %10s  %s\n",
			e.Seq, e.Time.Format("15:04:05.000"), e.Type, job, e.Tenant, e.Task, att, span, e.Detail)
	}
	return b.String()
}
