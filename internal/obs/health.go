package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Status is one health check's answer.
type Status struct {
	OK bool
	// Detail is a short human line ("0 dead trackers", "backlog 9/8").
	Detail string
}

// Healthy and Unhealthy build a Status with a formatted detail line.
func Healthy(format string, args ...any) Status {
	return Status{OK: true, Detail: fmt.Sprintf(format, args...)}
}

func Unhealthy(format string, args ...any) Status {
	return Status{OK: false, Detail: fmt.Sprintf(format, args...)}
}

// Check evaluates one aspect of service health at call time.
type Check func() Status

// CheckResult is one named check's evaluated status.
type CheckResult struct {
	Name string
	Status
}

// Health is an ordered set of named checks behind /healthz. A nil *Health
// evaluates to healthy with no checks.
type Health struct {
	mu     sync.Mutex
	names  []string
	checks map[string]Check
}

// NewHealth creates an empty health evaluator.
func NewHealth() *Health {
	return &Health{checks: make(map[string]Check)}
}

// Register adds (or replaces) a named check; registration order is
// evaluation and rendering order.
func (h *Health) Register(name string, c Check) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.checks[name]; !ok {
		h.names = append(h.names, name)
	}
	h.checks[name] = c
}

// Evaluate runs every check. The service is healthy iff all checks pass.
func (h *Health) Evaluate() (bool, []CheckResult) {
	if h == nil {
		return true, nil
	}
	h.mu.Lock()
	names := append([]string(nil), h.names...)
	checks := make([]Check, len(names))
	for i, n := range names {
		checks[i] = h.checks[n]
	}
	h.mu.Unlock()
	ok := true
	results := make([]CheckResult, len(names))
	for i, c := range checks {
		st := c()
		results[i] = CheckResult{Name: names[i], Status: st}
		ok = ok && st.OK
	}
	return ok, results
}

// RenderHealth renders the /healthz body: a verdict line then one line per
// check.
func RenderHealth(ok bool, results []CheckResult) string {
	var b strings.Builder
	if ok {
		b.WriteString("ok\n")
	} else {
		b.WriteString("unhealthy\n")
	}
	for _, r := range results {
		mark := "ok"
		if !r.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  %-12s %-4s %s\n", r.Name, mark, r.Detail)
	}
	return b.String()
}
