package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/metrics"
)

// SeriesConfig selects what the sampler tracks and how much history it keeps.
type SeriesConfig struct {
	// Interval between samples; DefaultSampleInterval when zero.
	Interval time.Duration
	// Capacity is points retained per series; DefaultSeriesCap when zero.
	Capacity int
	// Counters are sampled as per-second rates (delta since the previous
	// sample over elapsed wall time), so a soak plot shows throughput, not
	// an ever-growing total.
	Counters []string
	// Gauges are sampled as instantaneous levels.
	Gauges []string
	// Timers expand to three series each — "<name>.p50", "<name>.p95",
	// "<name>.p99" — in milliseconds.
	Timers []string
}

// Defaults for SeriesConfig zero fields.
const (
	DefaultSampleInterval = time.Second
	DefaultSeriesCap      = 512
)

// Point is one sample: a unix-milli timestamp and a value.
type Point struct {
	UnixMs int64   `json:"t"`
	V      float64 `json:"v"`
}

// Series is one named ring of points in a Snapshot, oldest first.
type Series struct {
	Name string `json:"name"`
	// Kind is "rate" (counter deltas/s), "gauge" or "ms" (timer quantile).
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// SeriesSnapshot is the /series.json body.
type SeriesSnapshot struct {
	// IntervalMs is the configured sampling period.
	IntervalMs int64    `json:"interval_ms"`
	Series     []Series `json:"series"`
}

// Sampler periodically snapshots a metrics registry into fixed-size rings.
// All methods on a nil *Sampler are no-ops.
type Sampler struct {
	reg *metrics.Registry
	cfg SeriesConfig

	mu    sync.Mutex
	rings map[string]*ring
	kinds map[string]string
	// lastCounts/lastTime turn monotonic counters into per-second rates.
	lastCounts map[string]int64
	lastTime   time.Time
	stop       chan struct{}
	done       chan struct{}
}

type ring struct {
	pts  []Point
	next int
	cap  int
}

func (g *ring) add(p Point) {
	if len(g.pts) < g.cap {
		g.pts = append(g.pts, p)
		return
	}
	g.pts[g.next] = p
	g.next = (g.next + 1) % g.cap
}

func (g *ring) snapshot() []Point {
	out := make([]Point, 0, len(g.pts))
	out = append(out, g.pts[g.next:]...)
	out = append(out, g.pts[:g.next]...)
	return out
}

// NewSampler builds a sampler over reg. It does not start sampling; call
// Start, or drive Sample directly in tests.
func NewSampler(reg *metrics.Registry, cfg SeriesConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSampleInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultSeriesCap
	}
	return &Sampler{
		reg:        reg,
		cfg:        cfg,
		rings:      make(map[string]*ring),
		kinds:      make(map[string]string),
		lastCounts: make(map[string]int64),
	}
}

// Start launches the sampling goroutine. Safe to call once; pair with Stop.
func (s *Sampler) Start() {
	if s == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-tick.C:
				s.Sample(now)
			}
		}
	}()
}

// Stop halts the sampling goroutine and waits for it to exit.
func (s *Sampler) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop, s.done = nil, nil
}

// Sample takes one sample at the given time. Exported so tests (and callers
// without a ticker) can drive the sampler deterministically.
func (s *Sampler) Sample(now time.Time) {
	if s == nil {
		return
	}
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := now.UnixMilli()
	elapsed := now.Sub(s.lastTime).Seconds()
	for _, name := range s.cfg.Counters {
		v := snap.Counters[name]
		// First sample has no baseline; record a zero rate rather than a
		// spike of the counter's whole history.
		var rate float64
		if !s.lastTime.IsZero() && elapsed > 0 {
			rate = float64(v-s.lastCounts[name]) / elapsed
		}
		s.lastCounts[name] = v
		s.put(name, "rate", Point{ms, rate})
	}
	for _, name := range s.cfg.Gauges {
		s.put(name, "gauge", Point{ms, float64(snap.Gauges[name])})
	}
	for _, name := range s.cfg.Timers {
		st := snap.Timers[name]
		s.put(name+".p50", "ms", Point{ms, st.P50 * 1000})
		s.put(name+".p95", "ms", Point{ms, st.P95 * 1000})
		s.put(name+".p99", "ms", Point{ms, st.P99 * 1000})
	}
	s.lastTime = now
}

func (s *Sampler) put(name, kind string, p Point) {
	g := s.rings[name]
	if g == nil {
		g = &ring{cap: s.cfg.Capacity}
		s.rings[name] = g
		s.kinds[name] = kind
	}
	g.add(p)
}

// Snapshot returns the retained history, series sorted by name.
func (s *Sampler) Snapshot() SeriesSnapshot {
	if s == nil {
		return SeriesSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SeriesSnapshot{IntervalMs: s.cfg.Interval.Milliseconds()}
	names := make([]string, 0, len(s.rings))
	for n := range s.rings {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Series = append(out.Series, Series{Name: n, Kind: s.kinds[n], Points: s.rings[n].snapshot()})
	}
	return out
}

// MarshalJSON renders the sampler's snapshot as the /series.json body.
func (s *Sampler) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Snapshot())
}

// sparkRunes are the eight block heights a sparkline cell can take.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as an ASCII sparkline of at most width cells (the
// newest values; width <= 0 means all), scaled min..max across the window.
func Spark(vals []float64, width int) string {
	if width > 0 && len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// RenderSeries renders the snapshot as the /series text page: one sparkline
// per series with its latest value and window extremes.
func RenderSeries(snap SeriesSnapshot, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time series (interval %dms, newest %d samples)\n", snap.IntervalMs, width)
	for _, sr := range snap.Series {
		vals := make([]float64, len(sr.Points))
		var last float64
		for i, p := range sr.Points {
			vals[i] = p.V
			last = p.V
		}
		lo, hi := last, last
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(&b, "  %-26s %-6s %s  last=%.3g min=%.3g max=%.3g\n",
			sr.Name, sr.Kind, Spark(vals, width), last, lo, hi)
	}
	return b.String()
}
