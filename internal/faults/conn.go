package faults

import (
	"errors"
	"net"
)

// Conn wraps a net.Conn with injection on Read and Write (operations
// "read" and "write"). A Drop or Crash fault closes the underlying
// connection before returning the error, so the peer observes a real
// connection loss, not just a local error.
type Conn struct {
	net.Conn
	inj       *Injector
	component string
	peer      string
}

// WrapConn attaches an injector to a connection. A nil injector returns the
// connection unchanged.
func WrapConn(c net.Conn, inj *Injector, component, peer string) net.Conn {
	if inj == nil {
		return c
	}
	return &Conn{Conn: c, inj: inj, component: component, peer: peer}
}

func (c *Conn) inject(op string) error {
	err := c.inj.Check(c.component, op, c.peer)
	if err == nil {
		return nil
	}
	if IsCrash(err) || errors.Is(err, ErrDropped) {
		c.Conn.Close()
	}
	return err
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.inject("read"); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.inject("write"); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}
