package faults

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes bounded exponential retry delays with jitter, the
// schedule every tolerant component in the live stack shares.
type Backoff struct {
	// Base is the delay before the first retry (default 1 ms).
	Base time.Duration
	// Max caps the delay (default 100 ms).
	Max time.Duration
	// Multiplier grows the delay per attempt (default 2; 1 gives a
	// constant-delay schedule).
	Multiplier float64
	// Jitter is the fraction of the delay randomized away, in [0, 1)
	// (default 0.2). Jitter draws come from the seeded source passed to
	// NewJitter, keeping schedules reproducible.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 100 * time.Millisecond
	}
	// Only an unset (or nonsensical negative) multiplier gets the default:
	// Multiplier of exactly 1 is the way to configure a constant-delay
	// schedule, and rewriting it to 2 made that impossible.
	if b.Multiplier <= 0 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		b.Jitter = 0.2
	}
	return b
}

// Jitter is a concurrency-safe seeded uniform source for backoff jitter.
type Jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitter seeds a jitter source.
func NewJitter(seed int64) *Jitter {
	return &Jitter{rng: rand.New(rand.NewSource(seed))}
}

func (j *Jitter) float64() float64 {
	if j == nil {
		return 0.5
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Float64()
}

// Delay returns the sleep before retry number attempt (attempt 1 is the
// first retry). A nil Jitter uses the midpoint deterministically.
func (b Backoff) Delay(attempt int, j *Jitter) time.Duration {
	b = b.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	// Shave off up to Jitter of the delay so synchronized retriers spread.
	d -= d * b.Jitter * j.float64()
	return time.Duration(d)
}
