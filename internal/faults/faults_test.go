package faults

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	for i := 0; i < 10; i++ {
		if err := in.Check("c", "op", "p"); err != nil {
			t.Fatalf("nil injector injected: %v", err)
		}
	}
	in.Add(Rule{})
	in.Partition("a", "b")
	in.CrashComponent("c")
	if in.Crashed("c") || in.Count("c", "op") != 0 {
		t.Fatal("nil injector has state")
	}
}

func TestRuleWindowAndCounting(t *testing.T) {
	in := New(1, Rule{Component: "c", Operation: "op", After: 2, Until: 4})
	var errs []bool
	for i := 0; i < 6; i++ {
		errs = append(errs, in.Check("c", "op", "") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("call %d: injected=%v, want %v (all: %v)", i+1, errs[i], want[i], errs)
		}
	}
	if n := in.Count("c", "op"); n != 6 {
		t.Fatalf("Count = %d, want 6", n)
	}
}

func TestRuleEvery(t *testing.T) {
	in := New(1, Rule{Operation: "op", Every: 3})
	var fired int
	for i := 0; i < 9; i++ {
		if in.Check("c", "op", "") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("Every=3 fired %d times over 9 calls, want 3", fired)
	}
}

func TestWildcardsAndMismatch(t *testing.T) {
	in := New(1, Rule{Component: "a", Operation: "read"})
	if in.Check("b", "read", "") != nil {
		t.Fatal("rule fired for wrong component")
	}
	if in.Check("a", "write", "") != nil {
		t.Fatal("rule fired for wrong operation")
	}
	if in.Check("a", "read", "anyone") == nil {
		t.Fatal("rule did not fire on match")
	}
}

func TestProbabilityDeterministicUnderSeed(t *testing.T) {
	run := func() []bool {
		in := New(42, Rule{Operation: "call", Probability: 0.3})
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, in.Check("c", "call", "") != nil)
		}
		return out
	}
	a, b := run(), run()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == 50 {
		t.Fatalf("p=0.3 fired %d/50 times", fired)
	}
}

func TestCrashIsPermanent(t *testing.T) {
	in := New(1, Rule{Component: "node", After: 1, Action: Crash})
	if err := in.Check("node", "read", ""); err != nil {
		t.Fatalf("first call should pass: %v", err)
	}
	err := in.Check("node", "read", "")
	if !IsCrash(err) {
		t.Fatalf("second call: %v, want crash", err)
	}
	// Any operation on the component now fails, forever.
	if err := in.Check("node", "write", "x"); !IsCrash(err) {
		t.Fatalf("post-crash op: %v", err)
	}
	if !in.Crashed("node") {
		t.Fatal("Crashed() = false after crash")
	}
	if in.Check("other", "read", "") != nil {
		t.Fatal("crash leaked to another component")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	in := New(1)
	in.Partition("a", "b")
	if err := in.Check("a", "send", "b"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("a->b: %v", err)
	}
	if err := in.Check("b", "send", "a"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("b->a: %v", err)
	}
	if in.Check("a", "send", "c") != nil {
		t.Fatal("partition leaked to third party")
	}
	in.Heal("a", "b")
	if in.Check("a", "send", "b") != nil {
		t.Fatal("healed partition still fails")
	}
}

func TestDelayActionSleepsThenSucceeds(t *testing.T) {
	in := New(1, Rule{Operation: "op", Action: Delay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Check("c", "op", ""); err != nil {
		t.Fatalf("delay action errored: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay action slept only %v", d)
	}
}

func TestInjectedErrorsClassify(t *testing.T) {
	in := New(1, Rule{Operation: "fail"})
	if err := in.Check("c", "fail", ""); !IsInjected(err) {
		t.Fatalf("Fail: %v", err)
	}
	custom := errors.New("custom")
	in2 := New(1, Rule{Operation: "fail", Err: custom})
	if err := in2.Check("c", "fail", ""); !errors.Is(err, custom) {
		t.Fatalf("custom error lost: %v", err)
	}
}

func TestWrapConnDropClosesConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	in := New(1, Rule{Component: "cli", Operation: "write", After: 1, Action: Drop})
	conn := WrapConn(raw, in, "cli", "srv")
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := conn.Write([]byte("boom")); !errors.Is(err, ErrDropped) {
		t.Fatalf("second write: %v, want drop", err)
	}
	// The underlying socket must actually be closed: the peer sees EOF
	// after draining the first write.
	srv := <-accepted
	defer srv.Close()
	srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	n, _ := srv.Read(buf)
	if string(buf[:n]) != "ok" {
		t.Fatalf("peer read %q", buf[:n])
	}
	if _, err := srv.Read(buf); err == nil {
		t.Fatal("peer connection still open after injected drop")
	}
}

func TestWrapConnNilInjectorPassThrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if WrapConn(a, nil, "c", "p") != a {
		t.Fatal("nil injector wrapped the conn")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Multiplier: 2, Jitter: 0}
	wants := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond,
	}
	for i, want := range wants {
		if got := b.Delay(i+1, nil); got != want {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, want)
		}
	}
}

func TestBackoffConstantSchedule(t *testing.T) {
	// Multiplier 1 is the documented way to get a constant-delay schedule.
	// withDefaults used to rewrite any Multiplier <= 1 to 2, silently
	// turning the schedule exponential.
	b := Backoff{Base: 5 * time.Millisecond, Max: time.Second, Multiplier: 1, Jitter: 0}
	for attempt := 1; attempt <= 6; attempt++ {
		if got := b.Delay(attempt, nil); got != 5*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want constant 5ms", attempt, got)
		}
	}
	// The zero value still gets the exponential default.
	d := Backoff{Base: time.Millisecond, Max: time.Second, Jitter: 0}
	if got := d.Delay(2, nil); got != 2*time.Millisecond {
		t.Fatalf("unset multiplier: Delay(2) = %v, want 2ms", got)
	}
}

func TestBackoffJitterDeterministicUnderSeed(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	j1, j2 := NewJitter(7), NewJitter(7)
	for i := 1; i <= 10; i++ {
		d1, d2 := b.Delay(i, j1), b.Delay(i, j2)
		if d1 != d2 {
			t.Fatalf("attempt %d: %v vs %v under same seed", i, d1, d2)
		}
		if d1 <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", i, d1)
		}
	}
}
