// Package faults is a deterministic, seedable fault-injection layer for the
// live communication substrates (hadooprpc, jetty, the mpi TCP transport,
// dfs DataNode I/O) and the fault-tolerance helpers those substrates use to
// survive it (bounded retry with exponential backoff and jitter).
//
// The injector is rule-driven: each Rule matches an operation by component
// name, operation name, peer and the per-(component, operation) call count,
// and fires an Action — fail the operation, delay it, drop the underlying
// connection, or crash the component permanently. Probabilistic rules draw
// from a seeded generator, so a given seed produces one reproducible fault
// schedule. Components consult the injector at explicit injection points
// (Check) or implicitly through a wrapped net.Conn (WrapConn).
//
// A nil *Injector is valid everywhere and injects nothing, so production
// call sites thread it unconditionally.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/obs"
	"github.com/ict-repro/mpid/internal/trace"
)

// Action is what a matched rule does to the operation.
type Action int

const (
	// Fail returns an error from the operation; the component is otherwise
	// healthy (a transient fault — retryable).
	Fail Action = iota + 1
	// Delay sleeps for the rule's Delay, then lets the operation proceed.
	Delay
	// Drop fails the operation and tears down the underlying connection
	// (wrapped conns are closed) — the mid-stream connection loss case.
	Drop
	// Crash kills the component permanently: this and every later Check
	// for the component returns ErrCrashed, modelling process death.
	Crash
)

// Sentinel errors produced by injected faults. All of them unwrap to
// ErrInjected so tolerant code can classify them as synthetic transport
// faults.
var (
	ErrInjected    = errors.New("faults: injected fault")
	ErrCrashed     = fmt.Errorf("component crashed: %w", ErrInjected)
	ErrDropped     = fmt.Errorf("connection dropped: %w", ErrInjected)
	ErrPartitioned = fmt.Errorf("network partitioned: %w", ErrInjected)
)

// IsInjected reports whether err originated from an injector.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// IsCrash reports whether err is a permanent component crash.
func IsCrash(err error) bool { return errors.Is(err, ErrCrashed) }

// Rule matches operations and fires an action. Zero-valued match fields are
// wildcards. Counting is per (component, operation): the first matching
// call of an operation on a component has count 1.
type Rule struct {
	// Component, Operation, Peer select operations; "" matches any.
	Component string
	Operation string
	Peer      string
	// After skips the first After matching calls (fire from call After+1).
	After int
	// Until, when > 0, stops the rule firing past that call count.
	Until int
	// Every, when > 0, fires only every Every-th call inside the window.
	Every int
	// Probability, when in (0, 1), gates each firing on a seeded coin
	// flip; 0 or >= 1 means fire deterministically.
	Probability float64
	// Action is what happens; Fail if unset.
	Action Action
	// Delay is the injected latency for Action == Delay.
	Delay time.Duration
	// Err overrides the returned error (defaults to a sentinel).
	Err error
}

type opKey struct{ component, operation string }

// Injector evaluates rules. All methods are safe for concurrent use, and
// all methods on a nil receiver are no-ops that inject nothing.
type Injector struct {
	mu          sync.Mutex
	rng         *rand.Rand
	rules       []Rule
	counts      map[opKey]int
	crashed     map[string]bool
	partitioned map[[2]string]bool
	metrics     *metrics.Registry
	tracer      *trace.Tracer
	events      *obs.Recorder
}

// New creates an injector whose probabilistic draws are driven by seed.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rng:         rand.New(rand.NewSource(seed)),
		rules:       rules,
		counts:      make(map[opKey]int),
		crashed:     make(map[string]bool),
		partitioned: make(map[[2]string]bool),
	}
}

// SetMetrics wires a registry into the injector: every fired fault bumps
// the "faults.injected" counter plus a per-action one
// ("faults.injected.<fail|delay|drop|crash>"). A nil registry (or nil
// injector) records nothing.
func (in *Injector) SetMetrics(m *metrics.Registry) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.metrics = m
}

// SetTracer wires a span collector into the injector: every fired fault
// records an instant trace.KindFault span named
// "fault.<fail|delay|drop|crash>" annotated with the component, operation
// and peer it hit. A nil tracer (or nil injector) records nothing.
func (in *Injector) SetTracer(tr *trace.Tracer) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tracer = tr
}

// SetEvents wires a flight recorder into the injector: every fired fault
// emits an obs.EvFault event carrying the component, operation and peer it
// hit, cross-linked to the KindFault instant span's id. A nil recorder (or
// nil injector) records nothing.
func (in *Injector) SetEvents(ev *obs.Recorder) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.events = ev
}

// Add appends a rule.
func (in *Injector) Add(r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
}

// Partition severs the pair (a, b): Checks where one side is the component
// and the other the peer fail with ErrPartitioned, in both directions.
func (in *Injector) Partition(a, b string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.partitioned[[2]string{a, b}] = true
	in.partitioned[[2]string{b, a}] = true
}

// Heal removes a partition installed by Partition.
func (in *Injector) Heal(a, b string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.partitioned, [2]string{a, b})
	delete(in.partitioned, [2]string{b, a})
}

// CrashComponent kills a component directly (no rule needed).
func (in *Injector) CrashComponent(component string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashed[component] = true
}

// Crashed reports whether the component has been crashed.
func (in *Injector) Crashed(component string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed[component]
}

// Count returns how many times (component, operation) has been checked.
func (in *Injector) Count(component, operation string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[opKey{component, operation}]
}

// Check records one occurrence of (component, operation, peer) and returns
// the injected error, if any rule fires. Delay actions sleep here, then
// return nil. Crash actions poison the component permanently.
func (in *Injector) Check(component, operation, peer string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	if in.crashed[component] {
		in.mu.Unlock()
		return fmt.Errorf("%s: %w", component, ErrCrashed)
	}
	if in.partitioned[[2]string{component, peer}] {
		in.mu.Unlock()
		return fmt.Errorf("%s <-> %s: %w", component, peer, ErrPartitioned)
	}
	key := opKey{component, operation}
	in.counts[key]++
	count := in.counts[key]

	var fired *Rule
	for i := range in.rules {
		r := &in.rules[i]
		if !match(r.Component, component) || !match(r.Operation, operation) || !match(r.Peer, peer) {
			continue
		}
		if count <= r.After {
			continue
		}
		if r.Until > 0 && count > r.Until {
			continue
		}
		if r.Every > 0 && (count-r.After)%r.Every != 0 {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && in.rng.Float64() >= r.Probability {
			continue
		}
		fired = r
		break
	}
	if fired == nil {
		in.mu.Unlock()
		return nil
	}
	action := fired.Action
	if action == 0 {
		action = Fail
	}
	if action == Crash {
		in.crashed[component] = true
	}
	errOverride, delay := fired.Err, fired.Delay
	m, tr, ev := in.metrics, in.tracer, in.events
	in.mu.Unlock()

	m.Counter("faults.injected").Inc()
	m.Counter("faults.injected." + actionName(action)).Inc()
	ictx := tr.Instant(trace.Context{}, "fault."+actionName(action), trace.KindFault,
		trace.Annotation{Key: "component", Value: component},
		trace.Annotation{Key: "operation", Value: operation},
		trace.Annotation{Key: "peer", Value: peer})
	detail := fmt.Sprintf("%s: %s/%s", actionName(action), component, operation)
	if peer != "" {
		detail += " peer=" + peer
	}
	ev.Emit(obs.Event{Type: obs.EvFault, Span: ictx.Span, Trace: ictx.Trace, Detail: detail})

	switch action {
	case Delay:
		time.Sleep(delay)
		return nil
	case Drop:
		if errOverride != nil {
			return errOverride
		}
		return fmt.Errorf("%s/%s: %w", component, operation, ErrDropped)
	case Crash:
		return fmt.Errorf("%s: %w", component, ErrCrashed)
	default: // Fail
		if errOverride != nil {
			return errOverride
		}
		return fmt.Errorf("%s/%s: %w", component, operation, ErrInjected)
	}
}

// match is the wildcard-aware field comparison.
func match(pattern, value string) bool { return pattern == "" || pattern == value }

// actionName labels an action for metric names.
func actionName(a Action) string {
	switch a {
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Crash:
		return "crash"
	default:
		return "fail"
	}
}
