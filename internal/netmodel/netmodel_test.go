package netmodel

import (
	"math"
	"testing"
	"time"
)

// within checks a value is inside [lo, hi].
func within(t *testing.T, what string, v, lo, hi float64) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s = %g, want in [%g, %g]", what, v, lo, hi)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func TestMPIAnchorsMatchPaper(t *testing.T) {
	m := MPI()
	// Paper: small messages under 1 ms; 1 MB ~ 10.3 ms; 64 MB ~ 572 ms.
	within(t, "MPI 1B", ms(m.Latency(1)), 0.4, 1.0)
	within(t, "MPI 1KB", ms(m.Latency(1*KB)), 0.4, 1.0)
	within(t, "MPI 1MB", ms(m.Latency(1*MB)), 8, 13)
	within(t, "MPI 64MB", ms(m.Latency(64*MB)), 500, 650)
	within(t, "MPI peak BW", m.PeakBandwidth()/1e6, 105, 118)
}

func TestHadoopRPCAnchorsMatchPaper(t *testing.T) {
	r := HadoopRPC()
	within(t, "RPC 1B", ms(r.Latency(1)), 1.2, 1.4)
	within(t, "RPC 16B", ms(r.Latency(16)), 1.2, 1.4)
	within(t, "RPC 1KB", ms(r.Latency(1*KB)), 8, 10)
	within(t, "RPC 1MB", ms(r.Latency(1*MB)), 1150, 1350)
	within(t, "RPC 64MB", ms(r.Latency(64*MB)), 53000, 60000)
}

func TestLatencyRatiosMatchPaper(t *testing.T) {
	m, r := MPI(), HadoopRPC()
	// Paper: 1 B ratio is 2.49x (the smallest in the whole test); 1 KB is
	// 15.1x; beyond 256 KB over 100x; 1 MB is 123x (the largest).
	ratio := func(n int64) float64 {
		return r.Latency(n).Seconds() / m.Latency(n).Seconds()
	}
	within(t, "ratio 1B", ratio(1), 2.0, 3.0)
	within(t, "ratio 1KB", ratio(1*KB), 12, 18)
	within(t, "ratio 256KB", ratio(256*KB), 80, 120)
	within(t, "ratio 1MB", ratio(1*MB), 100, 140)
	within(t, "ratio 64MB", ratio(64*MB), 85, 115)
	// Monotonic growth from 1 B to 1 MB as the paper describes.
	if ratio(1) > ratio(1*KB) || ratio(1*KB) > ratio(1*MB) {
		t.Errorf("ratio not growing: %g, %g, %g", ratio(1), ratio(1*KB), ratio(1*MB))
	}
}

func TestBandwidthShapeMatchesPaper(t *testing.T) {
	const total = 128 * MB
	m, j, r := MPI(), Jetty(), HadoopRPC()

	// Paper: RPC peaks at ~1.4 MB/s; Jetty and MPI reach 80-111 MB/s from
	// 256 B packets up; MPI peak ~111 MB/s is 2-3% above Jetty ~108 MB/s.
	rpcPeak := 0.0
	for _, p := range []int64{1, 256, 1 * KB, 64 * KB, 1 * MB, 64 * MB} {
		if bw := Bandwidth(r, total, p); bw > rpcPeak {
			rpcPeak = bw
		}
	}
	within(t, "RPC peak MB/s", rpcPeak/1e6, 0.8, 1.6)

	within(t, "Jetty 256B MB/s", Bandwidth(j, total, 256)/1e6, 60, 95)
	within(t, "Jetty 64MB MB/s", Bandwidth(j, total, 64*MB)/1e6, 100, 110)
	within(t, "MPI 256B MB/s", Bandwidth(m, total, 256)/1e6, 50, 90)
	within(t, "MPI 64MB MB/s", Bandwidth(m, total, 64*MB)/1e6, 105, 115)

	mpiPeak := Bandwidth(m, total, 64*MB)
	jettyPeak := Bandwidth(j, total, 64*MB)
	gain := (mpiPeak - jettyPeak) / jettyPeak
	within(t, "MPI over Jetty peak gain", gain, 0.01, 0.06)

	// MPI and Jetty ~100x RPC at peak.
	within(t, "MPI/RPC peak ratio", mpiPeak/rpcPeak, 60, 140)
}

func TestCurveInterpolatesMonotonically(t *testing.T) {
	r := HadoopRPC()
	prev := time.Duration(0)
	for n := int64(1); n <= 64*MB; n *= 2 {
		l := r.Latency(n)
		if l < prev-time.Microsecond { // tolerate log-space rounding on flat segments
			t.Fatalf("latency decreased at %d bytes: %v < %v", n, l, prev)
		}
		prev = l
	}
}

func TestCurveExtrapolation(t *testing.T) {
	c := NewCurve("test", []Point{
		{100, 10 * time.Millisecond},
		{1000, 100 * time.Millisecond},
	}, true)
	// Slope is 1 in log-log space, so 10000 bytes ~ 1000 ms and 10 bytes ~ 1 ms.
	if got := c.Latency(10000); math.Abs(ms(got)-1000) > 50 {
		t.Errorf("extrapolated high = %v, want ~1000ms", got)
	}
	if got := c.Latency(10); math.Abs(ms(got)-1) > 0.1 {
		t.Errorf("extrapolated low = %v, want ~1ms", got)
	}
	// Exact anchor hit.
	if got := c.Latency(100); got != 10*time.Millisecond {
		t.Errorf("anchor = %v, want 10ms", got)
	}
	// Sizes below 1 clamp to 1.
	if got := c.Latency(0); got != c.Latency(1) {
		t.Errorf("Latency(0) = %v != Latency(1) = %v", got, c.Latency(1))
	}
}

func TestCurveValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("too few anchors", func() {
		NewCurve("x", []Point{{1, time.Millisecond}}, true)
	})
	mustPanic("duplicate anchors", func() {
		NewCurve("x", []Point{{1, time.Millisecond}, {1, 2 * time.Millisecond}}, true)
	})
	mustPanic("non-positive latency", func() {
		NewCurve("x", []Point{{1, 0}, {2, time.Millisecond}}, true)
	})
}

func TestStreamTimePacketMath(t *testing.T) {
	m := &AlphaBeta{ModelName: "t", Alpha: time.Millisecond, Beta: 1e6, StreamOverhead: time.Millisecond}
	// 10 bytes in 3-byte packets = 4 packets.
	got := m.StreamTime(10, 3)
	want := 4*time.Millisecond + 10*time.Microsecond
	if got != want {
		t.Errorf("StreamTime = %v, want %v", got, want)
	}
}

func TestPacketCountPanicsOnZeroPacket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for packet size 0")
		}
	}()
	MPI().StreamTime(100, 0)
}

func TestRawTCPSitsBetweenJettyAndMPIAtPeak(t *testing.T) {
	const total = 128 * MB
	tcp := Bandwidth(RawTCP(), total, 64*MB)
	jetty := Bandwidth(Jetty(), total, 64*MB)
	mpi := Bandwidth(MPI(), total, 64*MB)
	if !(jetty < tcp && tcp < mpi) {
		t.Errorf("peak order want jetty < rawtcp < mpi, got %g, %g, %g", jetty, tcp, mpi)
	}
}

func TestCallPerPacketVsStreaming(t *testing.T) {
	// The defining mechanism: for the same substrate parameters, a
	// call-per-packet transfer of many small packets must be orders of
	// magnitude slower than a streaming one.
	rpc := HadoopRPC()
	mpi := MPI()
	slow := rpc.StreamTime(1*MB, 1*KB)
	fast := mpi.StreamTime(1*MB, 1*KB)
	if slow < 100*fast {
		t.Errorf("call-per-packet %v should be >=100x streaming %v", slow, fast)
	}
}

func TestBandwidthInfiniteOnZeroTime(t *testing.T) {
	m := &AlphaBeta{ModelName: "free", Alpha: 0, Beta: 1e30}
	if bw := Bandwidth(m, 0, 1); !math.IsInf(bw, 1) {
		t.Errorf("Bandwidth of zero-time transfer = %g, want +Inf", bw)
	}
}

func TestHighPerformanceInterconnectModels(t *testing.T) {
	ib, tenGE, gige := InfiniBand(), TenGigE(), MPI()
	// Latency ordering: IB << 10GigE << GigE MPI.
	if !(ib.Latency(1) < tenGE.Latency(1) && tenGE.Latency(1) < gige.Latency(1)) {
		t.Errorf("latency ordering broken: %v, %v, %v",
			ib.Latency(1), tenGE.Latency(1), gige.Latency(1))
	}
	// Peak bandwidth ordering and rough factors (IB ~29x GigE, 10GigE ~10x).
	ibGain := ib.PeakBandwidth() / gige.PeakBandwidth()
	if ibGain < 20 || ibGain > 40 {
		t.Errorf("IB/GigE peak gain = %g, want ~29x", ibGain)
	}
	tenGain := tenGE.PeakBandwidth() / gige.PeakBandwidth()
	if tenGain < 8 || tenGain > 12 {
		t.Errorf("10GigE/GigE peak gain = %g, want ~10x", tenGain)
	}
	// Small-message latency in the microsecond class.
	if ib.Latency(8) > 5*time.Microsecond {
		t.Errorf("IB 8B latency = %v", ib.Latency(8))
	}
}
