// Package netmodel provides communication cost models for the three
// point-to-point substrates the paper measures on its 8-node Gigabit
// Ethernet testbed (§II.B): MPICH2 send/recv, Hadoop RPC, and HTTP over
// Jetty, plus a raw-TCP model for the paper's future-work comparison
// (§VI(1), Socket over Java NIO).
//
// Each model answers two questions:
//
//   - Latency(n): one-way latency of a single n-byte message (the paper's
//     Figure 2 ping-pong divided by two).
//   - Streaming cost: what it costs to push a long run of n-byte packets
//     through an established connection (the paper's Figure 3 bandwidth
//     test, which moves 128 MB in fixed-size packets).
//
// The two differ fundamentally per substrate. MPI and Jetty stream: packets
// pipeline through one connection, so per-packet cost is a CPU/syscall
// overhead plus wire time. Hadoop RPC cannot stream — every packet is a
// full RPC invocation carrying the payload as a serialized parameter, and a
// connection allows a single outstanding call — so per-packet cost is the
// full call latency. That mechanism, not the wire, is why the paper
// measures Hadoop RPC peaking at ~1.4 MB/s on a 125 MB/s network.
//
// Model parameters are calibrated to the anchor measurements the paper
// reports (see DESIGN.md §5); the calibration tests in this package pin the
// models to those anchors.
package netmodel

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Common byte-size constants used throughout the experiments.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// Model is a calibrated cost model for one communication substrate.
type Model interface {
	// Name identifies the substrate ("MPICH2", "HadoopRPC", "Jetty", ...).
	Name() string
	// Latency returns the one-way latency of a single message of n bytes.
	Latency(n int64) time.Duration
	// StreamTime returns the time to move total bytes through an
	// established connection using packets of the given size.
	StreamTime(total, packet int64) time.Duration
	// PeakBandwidth returns the asymptotic streaming bandwidth in
	// bytes/second.
	PeakBandwidth() float64
}

// Bandwidth computes the achieved bandwidth in bytes/second when moving
// total bytes in packets of the given size under the model.
func Bandwidth(m Model, total, packet int64) float64 {
	t := m.StreamTime(total, packet)
	if t <= 0 {
		return math.Inf(1)
	}
	return float64(total) / t.Seconds()
}

// packetCount returns the number of packets needed for total bytes.
func packetCount(total, packet int64) int64 {
	if packet <= 0 {
		panic(fmt.Sprintf("netmodel: non-positive packet size %d", packet))
	}
	n := total / packet
	if total%packet != 0 {
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// Alpha-beta model (MPI, Jetty, raw TCP)

// AlphaBeta is the classic postal model: a message of n bytes costs
// alpha + n/beta one-way, and streaming costs a per-packet software overhead
// plus wire time. It fits MPICH2 on GigE extremely well and is also used for
// Jetty and raw TCP with different constants.
type AlphaBeta struct {
	ModelName string
	// Alpha is the zero-byte one-way latency.
	Alpha time.Duration
	// Beta is the wire bandwidth in bytes/second.
	Beta float64
	// StreamOverhead is the per-packet software cost (syscall, buffer
	// management) when packets pipeline through one connection.
	StreamOverhead time.Duration
	// SetupCost is a one-time connection establishment cost added to
	// StreamTime (TCP + protocol handshake; zero for MPI where the
	// connection pre-exists).
	SetupCost time.Duration
}

// Name implements Model.
func (m *AlphaBeta) Name() string { return m.ModelName }

// Latency implements Model: alpha + n/beta.
func (m *AlphaBeta) Latency(n int64) time.Duration {
	wire := float64(n) / m.Beta
	return m.Alpha + time.Duration(wire*1e9)
}

// StreamTime implements Model: setup + packets*(overhead) + total/beta.
func (m *AlphaBeta) StreamTime(total, packet int64) time.Duration {
	n := packetCount(total, packet)
	wire := float64(total) / m.Beta
	return m.SetupCost + time.Duration(n)*m.StreamOverhead + time.Duration(wire*1e9)
}

// PeakBandwidth implements Model.
func (m *AlphaBeta) PeakBandwidth() float64 { return m.Beta }

// ---------------------------------------------------------------------------
// Curve model (Hadoop RPC)

// Point is a calibration anchor: a message size and its measured one-way
// latency.
type Point struct {
	Bytes   int64
	Latency time.Duration
}

// Curve interpolates latency between anchor points in log-log space, which
// is how the paper plots Figure 2 and the natural space for costs that are
// polynomial in message size. Outside the anchor range it extrapolates with
// the slope of the nearest segment.
type Curve struct {
	ModelName string
	Anchors   []Point
	// CallPerPacket marks substrates that cannot pipeline: StreamTime is
	// then packets * Latency(packet). Hadoop RPC allows one outstanding
	// call per connection, so it is call-per-packet.
	CallPerPacket bool
	// Overhead and Beta describe streaming for curve models that CAN
	// pipeline (unused when CallPerPacket).
	Overhead time.Duration
	Beta     float64
}

// NewCurve validates and sorts the anchors.
func NewCurve(name string, anchors []Point, callPerPacket bool) *Curve {
	if len(anchors) < 2 {
		panic("netmodel: curve needs at least 2 anchors")
	}
	c := &Curve{ModelName: name, Anchors: append([]Point(nil), anchors...), CallPerPacket: callPerPacket}
	sort.Slice(c.Anchors, func(i, j int) bool { return c.Anchors[i].Bytes < c.Anchors[j].Bytes })
	for i, a := range c.Anchors {
		if a.Bytes <= 0 || a.Latency <= 0 {
			panic(fmt.Sprintf("netmodel: anchor %d of %q must be positive", i, name))
		}
		if i > 0 && a.Bytes == c.Anchors[i-1].Bytes {
			panic(fmt.Sprintf("netmodel: duplicate anchor size %d in %q", a.Bytes, name))
		}
	}
	return c
}

// Name implements Model.
func (c *Curve) Name() string { return c.ModelName }

// Latency implements Model via log-log interpolation.
func (c *Curve) Latency(n int64) time.Duration {
	if n < 1 {
		n = 1
	}
	a := c.Anchors
	// Find the segment [i, i+1] bracketing n, clamping to the outermost
	// segments for extrapolation.
	i := sort.Search(len(a), func(k int) bool { return a[k].Bytes >= n })
	switch {
	case i == 0:
		if a[0].Bytes == n {
			return a[0].Latency
		}
		i = 1 // extrapolate below using first segment
	case i == len(a):
		i = len(a) - 1 // extrapolate above using last segment
	}
	lo, hi := a[i-1], a[i]
	lx0, lx1 := math.Log(float64(lo.Bytes)), math.Log(float64(hi.Bytes))
	ly0, ly1 := math.Log(float64(lo.Latency)), math.Log(float64(hi.Latency))
	t := (math.Log(float64(n)) - lx0) / (lx1 - lx0)
	ly := ly0 + t*(ly1-ly0)
	return time.Duration(math.Exp(ly))
}

// StreamTime implements Model.
func (c *Curve) StreamTime(total, packet int64) time.Duration {
	n := packetCount(total, packet)
	if c.CallPerPacket {
		return time.Duration(n) * c.Latency(packet)
	}
	wire := float64(total) / c.Beta
	return time.Duration(n)*c.Overhead + time.Duration(wire*1e9)
}

// PeakBandwidth implements Model.
func (c *Curve) PeakBandwidth() float64 {
	if !c.CallPerPacket {
		return c.Beta
	}
	// For call-per-packet substrates the peak is reached at the largest
	// anchor: bytes / latency there.
	last := c.Anchors[len(c.Anchors)-1]
	return float64(last.Bytes) / last.Latency.Seconds()
}

// ---------------------------------------------------------------------------
// Calibrated instances

// MPI returns the MPICH2-over-GigE model. Anchors (paper §II.B): ~0.52 ms
// at 1 B (Hadoop RPC's 1.3 ms is reported as 2.49x), ~0.6 ms at 1 KB,
// 10.3 ms at 1 MB, 572 ms at 64 MB, peak bandwidth ~111 MB/s.
func MPI() Model {
	return &AlphaBeta{
		ModelName:      "MPICH2",
		Alpha:          522 * time.Microsecond,
		Beta:           111 * 1e6,
		StreamOverhead: 2 * time.Microsecond,
		SetupCost:      0,
	}
}

// HadoopRPC returns the Hadoop RPC model, anchored to the paper's reported
// points: 1.3 ms for 1-16 B, 8.9 ms at 1 KB, ~100x MPI at 256 KB, 1259 ms
// at 1 MB, 56827 ms at 64 MB (effective bandwidth ~1.1-1.4 MB/s). Hadoop
// RPC serializes the payload field-by-field through ObjectWritable and
// allows one outstanding call per connection, so it is call-per-packet.
func HadoopRPC() Model {
	return NewCurve("HadoopRPC", []Point{
		{1, 1300 * time.Microsecond},
		{16, 1300 * time.Microsecond},
		{64, 2100 * time.Microsecond},
		{256, 4200 * time.Microsecond},
		{1 * KB, 8900 * time.Microsecond},
		{16 * KB, 52 * time.Millisecond},
		{256 * KB, 286 * time.Millisecond},
		{1 * MB, 1259 * time.Millisecond},
		{16 * MB, 15 * time.Second},
		{64 * MB, 56827 * time.Millisecond},
	}, true)
}

// Jetty returns the HTTP-over-Jetty model: streaming through a servlet
// connection at ~108 MB/s peak (2-3% below MPICH2), effective from 256 B
// packets upward (~80 MB/s there), with an HTTP request setup cost.
func Jetty() Model {
	return &AlphaBeta{
		ModelName:      "Jetty",
		Alpha:          900 * time.Microsecond, // HTTP request/response overhead
		Beta:           108 * 1e6,
		StreamOverhead: 840 * time.Nanosecond, // per-write servlet/stream cost
		SetupCost:      2 * time.Millisecond,  // connect + request headers
	}
}

// RawTCP returns a plain socket streaming model, the §VI(1) future-work
// series (Socket over Java NIO): no protocol framing above TCP, so peak is
// a shade above Jetty and below MPI's tuned stack at small packets.
func RawTCP() Model {
	return &AlphaBeta{
		ModelName:      "RawTCP",
		Alpha:          600 * time.Microsecond,
		Beta:           110 * 1e6,
		StreamOverhead: 1200 * time.Nanosecond,
		SetupCost:      1 * time.Millisecond,
	}
}

// GigabitWire is the raw wire rate of the testbed's Gigabit Ethernet in
// bytes/second; models top out below it because of protocol overheads.
const GigabitWire = 125e6

// InfiniBand returns a model of a 2011-class QDR InfiniBand interconnect
// with a native verbs stack — the §VI(4) future-work target ("to utilize
// high performance interconnects such as the Infiniband"). Numbers follow
// the era's published MPI-over-IB microbenchmarks: ~2 µs small-message
// latency, ~3.2 GB/s peak unidirectional bandwidth.
func InfiniBand() Model {
	return &AlphaBeta{
		ModelName:      "MPI-InfiniBand",
		Alpha:          2 * time.Microsecond,
		Beta:           3.2e9,
		StreamOverhead: 300 * time.Nanosecond,
		SetupCost:      0,
	}
}

// TenGigE returns a 10-Gigabit Ethernet model, the other interconnect Sur
// et al. (the paper's ref. 17) evaluate: TCP stack latency, ten times the
// GigE wire rate.
func TenGigE() Model {
	return &AlphaBeta{
		ModelName:      "MPI-10GigE",
		Alpha:          18 * time.Microsecond,
		Beta:           1.15e9,
		StreamOverhead: 1500 * time.Nanosecond,
		SetupCost:      0,
	}
}
