package core

import (
	"bytes"
	"sort"
)

// arenaBuffer is the allocation-conscious mapper-side hash table (§IV.A).
// Where the legacy hashBuffer pays one allocation per buffered pair (the
// value copy), one per new key (the map key string) and a map rebuild per
// spill, the arena keeps everything in four flat slices that are reset —
// not reallocated — between spills:
//
//	keyArena  all key bytes, appended back to back
//	valArena  all value bytes, appended back to back
//	entries   one record per distinct key: offsets into keyArena plus the
//	          head/tail of its value chain
//	nodes     one record per buffered value: offsets into valArena plus a
//	          next link, forming each key's chain in insertion order
//
// The hash table itself is open addressing with linear probing over int32
// entry indices, so lookups touch no pointers and growth is a flat rehash.
// Steady state, Send allocates nothing: arenas and tables retain their
// capacity across spill cycles.
type arenaBuffer struct {
	keyArena []byte
	valArena []byte
	entries  []arenaEntry
	nodes    []valNode
	slots    []int32 // entry index + 1; 0 = empty
	payload  int     // buffered payload bytes: each key once + all values

	scratch [][]byte // reused value-materialization space
	order   []int32  // reused sorted-entry index space for realign
}

// arenaEntry is one distinct key and its value chain.
type arenaEntry struct {
	hash   uint64
	keyOff int32
	keyLen int32
	head   int32 // node index + 1; 0 = empty chain
	tail   int32
	nvals  int32
}

// valNode is one buffered value in a key's chain.
type valNode struct {
	off  int32
	len  int32
	next int32 // node index + 1; 0 = end of chain
}

const arenaInitSlots = 64 // must stay a power of two

func newArenaBuffer() *arenaBuffer {
	return &arenaBuffer{slots: make([]int32, arenaInitSlots)}
}

// fnv1a matches HashPartitioner's hash; reimplemented here so the table
// hash cannot drift under a custom partitioner.
func fnv1a(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

func (b *arenaBuffer) key(e *arenaEntry) []byte {
	return b.keyArena[e.keyOff : e.keyOff+e.keyLen]
}

// find returns the entry index for key, or -1.
func (b *arenaBuffer) find(h uint64, key []byte) int32 {
	mask := uint64(len(b.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		idx := b.slots[i]
		if idx == 0 {
			return -1
		}
		e := &b.entries[idx-1]
		if e.hash == h && bytes.Equal(b.key(e), key) {
			return idx - 1
		}
	}
}

// insertSlot files entry index idx under hash h; the caller guarantees the
// key is absent and the table has room.
func (b *arenaBuffer) insertSlot(h uint64, idx int32) {
	mask := uint64(len(b.slots) - 1)
	i := h & mask
	for b.slots[i] != 0 {
		i = (i + 1) & mask
	}
	b.slots[i] = idx + 1
}

// grow doubles the slot table and rehashes every entry.
func (b *arenaBuffer) grow() {
	b.slots = make([]int32, 2*len(b.slots))
	for i := range b.entries {
		b.insertSlot(b.entries[i].hash, int32(i))
	}
}

// add buffers one pair, copying key and value into the arenas (Send promises
// the caller its buffers are free on return). It returns how many pairs the
// incremental combiner eliminated (0 without a combiner). Byte accounting is
// incremental: no walks outside the combine fold itself.
func (b *arenaBuffer) add(key, value []byte, combine CombineFunc) int64 {
	h := fnv1a(key)
	idx := b.find(h, key)
	if idx < 0 {
		if len(b.entries)*4 >= len(b.slots)*3 {
			b.grow()
		}
		idx = int32(len(b.entries))
		b.entries = append(b.entries, arenaEntry{
			hash:   h,
			keyOff: int32(len(b.keyArena)),
			keyLen: int32(len(key)),
		})
		b.keyArena = append(b.keyArena, key...)
		b.insertSlot(h, idx)
		b.payload += len(key)
	}
	b.appendValue(idx, value)
	b.payload += len(value)
	e := &b.entries[idx]
	if combine == nil || e.nvals < combineEvery {
		return 0
	}
	return b.combineEntry(idx, combine)
}

// appendValue copies value into the arena and links it at the entry's tail.
func (b *arenaBuffer) appendValue(idx int32, value []byte) {
	off := int32(len(b.valArena))
	b.valArena = append(b.valArena, value...)
	node := int32(len(b.nodes))
	b.nodes = append(b.nodes, valNode{off: off, len: int32(len(value))})
	e := &b.entries[idx]
	if e.tail != 0 {
		b.nodes[e.tail-1].next = node + 1
	} else {
		e.head = node + 1
	}
	e.tail = node + 1
	e.nvals++
}

// materialize walks an entry's chain into the reusable scratch slice. The
// returned slices alias valArena and are valid until the next arena append.
func (b *arenaBuffer) materialize(idx int32) [][]byte {
	e := &b.entries[idx]
	vs := b.scratch[:0]
	for n := e.head; n != 0; n = b.nodes[n-1].next {
		nd := &b.nodes[n-1]
		vs = append(vs, b.valArena[nd.off:nd.off+nd.len])
	}
	b.scratch = vs
	return vs
}

// combineEntry folds an entry's value chain through the combiner and rebuilds
// the chain from the result. Old value bytes become arena garbage until the
// next reset, which is the trade the incremental combiner exists to make: it
// runs precisely to keep hot-key chains short, so the dead bytes it strands
// are bounded by combineEvery values per fold.
func (b *arenaBuffer) combineEntry(idx int32, combine CombineFunc) int64 {
	vs := b.materialize(idx)
	oldLen, oldBytes := len(vs), 0
	for _, v := range vs {
		oldBytes += len(v)
	}
	out := combine(b.key(&b.entries[idx]), vs)
	// Rebuild the chain from the combined list. The returned slices may
	// alias valArena; append copies them to fresh offsets before the chain
	// is repointed, and Go's copy is overlap-safe in the non-growing case.
	e := &b.entries[idx]
	e.head, e.tail, e.nvals = 0, 0, 0
	newBytes := 0
	for _, v := range out {
		b.appendValue(idx, v)
		newBytes += len(v)
	}
	b.payload += newBytes - oldBytes
	return int64(oldLen - len(out))
}

// bytes reports the buffered payload byte count (each key once plus every
// buffered value), the quantity SpillThreshold is compared against.
func (b *arenaBuffer) bytes() int { return b.payload }

func (b *arenaBuffer) empty() bool { return len(b.entries) == 0 }

// reset forgets all buffered pairs but keeps every backing array, so the
// next fill cycle allocates only if it outgrows the previous ones.
func (b *arenaBuffer) reset() {
	b.keyArena = b.keyArena[:0]
	b.valArena = b.valArena[:0]
	b.entries = b.entries[:0]
	b.nodes = b.nodes[:0]
	for i := range b.slots {
		b.slots[i] = 0
	}
	b.payload = 0
}

// forEachSorted yields each distinct key with its materialized value list,
// keys in lexicographic order — the iteration order spill serializes, which
// the receive-side k-way merge relies on. The yielded slices alias the
// arenas and are invalid after the callback returns.
func (b *arenaBuffer) forEachSorted(fn func(key []byte, values [][]byte) error) error {
	order := b.order[:0]
	for i := range b.entries {
		order = append(order, int32(i))
	}
	sort.Slice(order, func(i, j int) bool {
		return bytes.Compare(b.key(&b.entries[order[i]]), b.key(&b.entries[order[j]])) < 0
	})
	b.order = order
	for _, idx := range order {
		if err := fn(b.key(&b.entries[idx]), b.materialize(idx)); err != nil {
			return err
		}
	}
	return nil
}
