package core

import (
	"fmt"
	"io"
	"sort"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mpi"
)

// receiver is the reducer-side state behind Recv: wildcard reception,
// reverse realignment and (in grouped mode) the cross-mapper merge.
type receiver struct {
	d *D

	// sendersLeft counts senders that have not yet sent DoneTag.
	sendersLeft int

	// Streaming mode: fragments decoded from the current message, served
	// in order.
	fragments []kv.KeyList

	// Grouped mode: accumulated merge table, then a sorted drain.
	groups   map[string][][]byte
	order    []string
	drained  bool
	drainPos int
}

func newReceiver(d *D) *receiver {
	return &receiver{
		d:           d,
		sendersLeft: len(d.cfg.Senders),
		groups:      make(map[string][][]byte),
	}
}

// Recv returns the next key with its value list — MPI_D_Recv. Reducers call
// it in a loop; io.EOF signals that every sender finalized and all data was
// delivered.
//
// In the default grouped mode each key is returned exactly once with all
// its values merged across mappers, keys in lexicographic order. In
// Streaming mode fragments are returned in arrival order as each message is
// reverse-realigned, so a key may appear once per sending spill.
func (d *D) Recv() ([]byte, [][]byte, error) {
	if !d.isReducer {
		return nil, nil, fmt.Errorf("mpid: rank %d is not a reducer", d.comm.Rank())
	}
	if d.cfg.Streaming {
		return d.recvState.nextStreaming()
	}
	return d.recvState.nextGrouped()
}

// RecvKeyList is Recv returning a kv.KeyList.
func (d *D) RecvKeyList() (kv.KeyList, error) {
	k, vs, err := d.Recv()
	return kv.KeyList{Key: k, Values: vs}, err
}

// receiveMessage blocks for the next MPI-D message in the wildcard
// reception style of §IV.A. It returns false when end-of-stream is reached
// (all senders done).
func (r *receiver) receiveMessage() (data []byte, more bool, err error) {
	for r.sendersLeft > 0 {
		// Wildcard: "each reducer adopts the MPI_Recv primitive in the
		// wildcard reception style to receive messages from any source."
		payload, st, err := r.d.comm.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return nil, false, err
		}
		switch st.Tag {
		case DataTag:
			return payload, true, nil
		case DoneTag:
			r.sendersLeft--
		default:
			return nil, false, fmt.Errorf("mpid: unexpected tag %d from rank %d", st.Tag, st.Source)
		}
	}
	return nil, false, nil
}

// decode reverse-realigns one contiguous partition buffer back into
// key/value-list fragments ("the sequential data stream will be
// re-constructed as key-value pairs").
func (r *receiver) decode(data []byte) ([]kv.KeyList, error) {
	var out []kv.KeyList
	for len(data) > 0 {
		klist, n, err := kv.ReadKeyList(data)
		if err != nil {
			return nil, fmt.Errorf("mpid: corrupt partition buffer: %w", err)
		}
		out = append(out, klist)
		r.d.counters.PairsReceived += int64(len(klist.Values))
		data = data[n:]
	}
	return out, nil
}

// nextStreaming yields fragments in arrival order.
func (r *receiver) nextStreaming() ([]byte, [][]byte, error) {
	for len(r.fragments) == 0 {
		data, more, err := r.receiveMessage()
		if err != nil {
			return nil, nil, err
		}
		if !more {
			return nil, nil, io.EOF
		}
		r.fragments, err = r.decode(data)
		if err != nil {
			return nil, nil, err
		}
	}
	f := r.fragments[0]
	r.fragments = r.fragments[1:]
	return f.Key, f.Values, nil
}

// nextGrouped merges everything first, then drains keys in sorted order.
func (r *receiver) nextGrouped() ([]byte, [][]byte, error) {
	if !r.drained {
		for {
			data, more, err := r.receiveMessage()
			if err != nil {
				return nil, nil, err
			}
			if !more {
				break
			}
			frags, err := r.decode(data)
			if err != nil {
				return nil, nil, err
			}
			for _, f := range frags {
				k := string(f.Key)
				if _, seen := r.groups[k]; !seen {
					r.order = append(r.order, k)
				}
				r.groups[k] = append(r.groups[k], f.Values...)
			}
		}
		sort.Strings(r.order)
		r.drained = true
	}
	if r.drainPos >= len(r.order) {
		return nil, nil, io.EOF
	}
	k := r.order[r.drainPos]
	r.drainPos++
	values := r.groups[k]
	delete(r.groups, k) // release as we stream out
	return []byte(k), values, nil
}
