package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mpi"
	"github.com/ict-repro/mpid/internal/shuffle"
	"github.com/ict-repro/mpid/internal/trace"
)

// UnexpectedTagError reports a message on the MPI-D communicator whose tag
// is neither DataTag nor DoneTag — some other protocol is leaking onto the
// communicator MPI-D was given. The receiver surfaces it as a typed error
// so callers can tell protocol contamination apart from transport failures.
type UnexpectedTagError struct {
	// Tag is the offending message's tag.
	Tag int
	// Source is the communicator rank that sent it.
	Source int
	// Size is the dropped payload's length in bytes.
	Size int
}

func (e *UnexpectedTagError) Error() string {
	return fmt.Sprintf("mpid: unexpected tag %d from rank %d (%d bytes dropped)", e.Tag, e.Source, e.Size)
}

// receiver is the reducer-side state behind Recv: wildcard reception,
// reverse realignment and (in grouped mode) the cross-mapper merge.
type receiver struct {
	d *D

	// sendersLeft counts senders that have not yet sent DoneTag.
	sendersLeft int

	// Streaming mode: fragments decoded from the current message, served
	// in order.
	fragments []kv.KeyList

	// Legacy grouped mode (Config.LegacyGroup): accumulated merge table,
	// then a sorted drain.
	groups   map[string][][]byte
	order    []string
	drained  bool
	drainPos int

	// Merged grouped mode (default): every received partition buffer is a
	// sorted run; the shuffle merge engine folds runs in the background
	// while reception is still in flight, and the final k-way pass streams
	// key groups through out while the reduce function consumes them.
	merger   *shuffle.Merger
	nextSeq  int
	out      chan kv.KeyList
	started  bool
	mergeErr error
}

func newReceiver(d *D) *receiver {
	r := &receiver{
		d:           d,
		sendersLeft: len(d.cfg.Senders),
	}
	switch {
	case d.cfg.Streaming:
	case d.cfg.LegacyGroup:
		r.groups = make(map[string][][]byte)
	default:
		// Recycle consumed run buffers into the transport's read pool when
		// there is one (TCP), closing the frame-read allocation loop;
		// otherwise into the instance pool. Final-pass buffers are never
		// recycled — the emitted slices alias them.
		pool := d.comm.RecvBufferPool()
		if pool == nil {
			pool = d.cfg.Pool
		}
		r.merger = shuffle.NewMerger(shuffle.Config{
			Factor:  d.cfg.MergeFactor,
			Pool:    pool,
			Ordered: true,
			OnPass: func(info shuffle.PassInfo) {
				d.mergeTimer.ObserveDuration(info.Duration)
				d.cfg.Tracer.Record(d.cfg.TraceCtx, "mpid.recv.merge", trace.KindMerge,
					info.Start, info.Start.Add(info.Duration),
					trace.Annotation{Key: "runs", Value: fmt.Sprint(info.Runs)},
					trace.Annotation{Key: "bytes_in", Value: fmt.Sprint(info.BytesIn)})
			},
		})
	}
	return r
}

// Recv returns the next key with its value list — MPI_D_Recv. Reducers call
// it in a loop; io.EOF signals that every sender finalized and all data was
// delivered.
//
// In the default grouped mode each key is returned exactly once with all
// its values merged across mappers, keys in lexicographic order. In
// Streaming mode fragments are returned in arrival order as each message is
// reverse-realigned, so a key may appear once per sending spill.
func (d *D) Recv() ([]byte, [][]byte, error) {
	if !d.isReducer {
		return nil, nil, fmt.Errorf("mpid: rank %d is not a reducer", d.comm.Rank())
	}
	switch {
	case d.cfg.Streaming:
		return d.recvState.nextStreaming()
	case d.cfg.LegacyGroup:
		return d.recvState.nextGroupedLegacy()
	default:
		return d.recvState.nextGroupedMerged()
	}
}

// RecvKeyList is Recv returning a kv.KeyList.
func (d *D) RecvKeyList() (kv.KeyList, error) {
	k, vs, err := d.Recv()
	return kv.KeyList{Key: k, Values: vs}, err
}

// receiveMessage blocks for the next MPI-D message in the wildcard
// reception style of §IV.A. It returns false when end-of-stream is reached
// (all senders done). An off-protocol tag yields an *UnexpectedTagError.
func (r *receiver) receiveMessage() (data []byte, more bool, err error) {
	for r.sendersLeft > 0 {
		// Wildcard: "each reducer adopts the MPI_Recv primitive in the
		// wildcard reception style to receive messages from any source."
		payload, st, err := r.d.comm.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return nil, false, err
		}
		switch st.Tag {
		case DataTag:
			return payload, true, nil
		case DoneTag:
			r.sendersLeft--
		default:
			return nil, false, &UnexpectedTagError{Tag: st.Tag, Source: st.Source, Size: len(payload)}
		}
	}
	return nil, false, nil
}

// decode reverse-realigns one contiguous partition buffer back into
// key/value-list fragments ("the sequential data stream will be
// re-constructed as key-value pairs").
func (r *receiver) decode(data []byte) ([]kv.KeyList, error) {
	var out []kv.KeyList
	for len(data) > 0 {
		klist, n, err := kv.ReadKeyList(data)
		if err != nil {
			return nil, fmt.Errorf("mpid: corrupt partition buffer: %w", err)
		}
		out = append(out, klist)
		r.d.counters.PairsReceived += int64(len(klist.Values))
		data = data[n:]
	}
	return out, nil
}

// nextStreaming yields fragments in arrival order.
func (r *receiver) nextStreaming() ([]byte, [][]byte, error) {
	for len(r.fragments) == 0 {
		data, more, err := r.receiveMessage()
		if err != nil {
			return nil, nil, err
		}
		if !more {
			return nil, nil, io.EOF
		}
		r.fragments, err = r.decode(data)
		if err != nil {
			return nil, nil, err
		}
	}
	f := r.fragments[0]
	r.fragments = r.fragments[1:]
	return f.Key, f.Values, nil
}

// nextGroupedLegacy buffers everything first, then drains keys in sorted
// order — the pre-merge drain, kept as the A/B baseline (Config.LegacyGroup).
func (r *receiver) nextGroupedLegacy() ([]byte, [][]byte, error) {
	if !r.drained {
		for {
			data, more, err := r.receiveMessage()
			if err != nil {
				return nil, nil, err
			}
			if !more {
				break
			}
			frags, err := r.decode(data)
			if err != nil {
				return nil, nil, err
			}
			for _, f := range frags {
				k := string(f.Key)
				if _, seen := r.groups[k]; !seen {
					r.order = append(r.order, k)
				}
				r.groups[k] = append(r.groups[k], f.Values...)
			}
		}
		sort.Strings(r.order)
		r.drained = true
	}
	if r.drainPos >= len(r.order) {
		return nil, nil, io.EOF
	}
	k := r.order[r.drainPos]
	r.drainPos++
	values := r.groups[k]
	delete(r.groups, k) // release as we stream out
	return []byte(k), values, nil
}

// nextGroupedMerged is the streaming grouped drain: each received partition
// buffer is a sorted run (spill serializes in sorted key order) handed to
// the merge engine, whose background passes fold runs while reception is
// still in flight. Once every sender is done, the final k-way pass runs in
// its own goroutine and streams key groups through a channel, so reduce
// computation overlaps the tail of the merge. Equal keys concatenate their
// values in run-arrival order (Ordered merger), which keeps the stream
// byte-identical with the legacy drain.
func (r *receiver) nextGroupedMerged() ([]byte, [][]byte, error) {
	if !r.started {
		for {
			data, more, err := r.receiveMessage()
			if err != nil {
				return nil, nil, err
			}
			if !more {
				break
			}
			r.merger.Add(r.nextSeq, data)
			r.nextSeq++
		}
		r.out = make(chan kv.KeyList, 64)
		mergeStart := time.Now()
		go func() {
			defer close(r.out)
			r.mergeErr = r.merger.Merge(func(kl kv.KeyList) error {
				r.out <- kl
				return nil
			})
			d := r.d
			d.mergeTimer.ObserveDuration(time.Since(mergeStart))
			d.cfg.Tracer.Record(d.cfg.TraceCtx, "mpid.recv.merge", trace.KindMerge,
				mergeStart, time.Now(), trace.Annotation{Key: "pass", Value: "final"})
		}()
		r.started = true
	}
	kl, ok := <-r.out
	if !ok {
		// Channel closed: r.mergeErr was written before close, so the
		// receive above orders the read after the write.
		if r.mergeErr != nil {
			return nil, nil, r.mergeErr
		}
		return nil, nil, io.EOF
	}
	r.d.counters.PairsReceived += int64(len(kl.Values))
	return kl.Key, kl.Values, nil
}
