package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mpi"
	"github.com/ict-repro/mpid/internal/trace"
)

// sendBuffer is the mapper-side hash table of §IV.A: Send buffers pairs
// here, grouped by key, so the combiner can merge values locally before
// anything is serialized or transmitted. Two implementations exist: the
// arenaBuffer fast path and the legacy map-based hashBuffer, kept behind
// Config.LegacySend as the A/B baseline.
type sendBuffer interface {
	// add buffers one pair (copying key and value) and returns how many
	// pairs the incremental combiner eliminated.
	add(key, value []byte, combine CombineFunc) int64
	// bytes is the buffered payload size SpillThreshold is compared against.
	bytes() int
	empty() bool
	reset()
	// forEachSorted yields each key with its buffered values, keys in
	// lexicographic order; yielded slices are only valid inside the callback.
	forEachSorted(fn func(key []byte, values [][]byte) error) error
}

// combineEvery bounds a key's in-buffer value list: once it reaches this
// length the combiner folds it down. This keeps hot keys from growing
// unbounded slices between spills — the paper puts local combination inside
// the MPI_D_Send routine, and doing it incrementally is what makes that
// cheap ("the aim of combining is to reduce the memory consuming").
const combineEvery = 256

// legacyGroup is one key's buffered values plus their running byte total,
// so the incremental combiner adjusts accounting in O(result) instead of
// re-walking the whole list on every fold.
type legacyGroup struct {
	values [][]byte
	vbytes int
}

// hashBuffer is the legacy map-based send buffer (Config.LegacySend). It
// pays an allocation per pair and a map rebuild per spill; the arenaBuffer
// replaces it as the default.
type hashBuffer struct {
	groups  map[string]*legacyGroup
	keys    []string // insertion order; sorted at spill
	payload int
}

func newHashBuffer() *hashBuffer {
	return &hashBuffer{groups: make(map[string]*legacyGroup)}
}

func (b *hashBuffer) add(key, value []byte, combine CombineFunc) int64 {
	k := string(key)
	g, ok := b.groups[k]
	if !ok {
		g = &legacyGroup{}
		b.groups[k] = g
		b.keys = append(b.keys, k)
		b.payload += len(key)
	}
	// Values are copied: Send promises the caller its buffers are free to
	// reuse on return, which the examples rely on when scanning input.
	g.values = append(g.values, append([]byte(nil), value...))
	g.vbytes += len(value)
	b.payload += len(value)
	var combined int64
	if combine != nil && len(g.values) >= combineEvery {
		oldLen, oldBytes := len(g.values), g.vbytes
		g.values = combine([]byte(k), g.values)
		newBytes := 0
		for _, v := range g.values {
			newBytes += len(v)
		}
		g.vbytes = newBytes
		b.payload += newBytes - oldBytes
		combined = int64(oldLen - len(g.values))
	}
	return combined
}

func (b *hashBuffer) bytes() int  { return b.payload }
func (b *hashBuffer) empty() bool { return len(b.keys) == 0 }

func (b *hashBuffer) reset() {
	b.groups = make(map[string]*legacyGroup)
	b.keys = b.keys[:0]
	b.payload = 0
}

func (b *hashBuffer) forEachSorted(fn func(key []byte, values [][]byte) error) error {
	sort.Strings(b.keys)
	for _, k := range b.keys {
		if err := fn([]byte(k), b.groups[k].values); err != nil {
			return err
		}
	}
	return nil
}

// Send buffers one key-value pair for delivery to the reducer owning its
// partition — MPI_D_Send. It returns quickly: at worst it triggers a spill
// of the buffered table. The caller keeps ownership of key and value.
//
// With a shared NodeArena configured, buffer access (and any spill it
// triggers) runs under the arena lock, serializing co-located senders; the
// spill threshold then applies to the node's aggregate buffered bytes.
func (d *D) Send(key, value []byte) error {
	if d.finalized {
		return ErrFinalized
	}
	if !d.isSender {
		return fmt.Errorf("mpid: rank %d is not a sender", d.comm.Rank())
	}
	if !d.sendOpen {
		return errors.New("mpid: send side already closed")
	}
	if d.nodeArena != nil {
		d.nodeArena.mu.Lock()
		defer d.nodeArena.mu.Unlock()
	}
	d.counters.PairsCombined += d.buf.add(key, value, d.cfg.Combiner)
	d.counters.PairsSent++
	if d.buf.bytes() >= d.cfg.SpillThreshold {
		return d.spill()
	}
	return nil
}

// SendPair is Send for a kv.Pair.
func (d *D) SendPair(p kv.Pair) error { return d.Send(p.Key, p.Value) }

// spill drains the hash table: combine, partition, realign, transmit. This
// is the heart of MPI-D — it converts the discrete, variable-size key-value
// world into the contiguous fixed-layout buffers MPI moves efficiently.
//
// Partitions are serialized in sorted key order, making every shipped
// buffer a sorted run — the invariant the receive-side k-way merge builds
// on. Partition buffers come from Config.Pool and, when the transport
// copies payloads (TCP), are retained and reused across spills.
func (d *D) spill() error {
	if d.buf.empty() {
		return nil
	}
	d.counters.Spills++

	// In Async mode, complete the previous spill's sends first so at most
	// one spill is in flight — bounded memory, still overlapped. This also
	// makes partition-buffer reuse safe: no Isend still reads them.
	if err := d.completePending(); err != nil {
		return err
	}

	spillStart := time.Now()
	nParts := d.numPartitions()
	parts := d.takePartBufs(nParts)

	// Realignment: serialize each key's (possibly combined) value list
	// into its partition's contiguous buffer, in sorted key order.
	err := d.buf.forEachSorted(func(key []byte, values [][]byte) error {
		if d.cfg.Combiner != nil {
			before := len(values)
			values = d.cfg.Combiner(key, values)
			d.counters.PairsCombined += int64(before - len(values))
		}
		if d.cfg.SortValues {
			sortValueList(values)
		}
		p := d.cfg.Partitioner(key, nParts)
		if p < 0 || p >= nParts {
			return fmt.Errorf("mpid: partitioner returned %d for %d partitions", p, nParts)
		}
		parts[p] = kv.AppendKeyList(parts[p], kv.KeyList{Key: key, Values: values})
		return nil
	})
	if err != nil {
		return err
	}
	d.buf.reset()
	realignEnd := time.Now()
	d.realignTimer.ObserveDuration(realignEnd.Sub(spillStart))

	for p, data := range parts {
		if len(data) == 0 {
			continue
		}
		dst := d.partitionOwner(p)
		d.counters.MessagesSent++
		d.counters.BytesSent += int64(len(data))
		if d.cfg.Async {
			d.pending = append(d.pending, d.comm.Isend(dst, DataTag, data))
			continue
		}
		if err := d.comm.Send(dst, DataTag, data); err != nil {
			return err
		}
	}
	if d.reuseParts {
		// The transport copied every payload (and Async completes pending
		// sends before the next realign), so the buffers are ours again.
		d.partBufs = parts
		d.partReuse.Add(int64(nParts))
	}
	end := time.Now()
	d.spillTimer.ObserveDuration(end.Sub(spillStart))
	if d.cfg.Tracer != nil {
		d.cfg.Tracer.Record(d.cfg.TraceCtx, "mpid.realign", trace.KindMerge, spillStart, realignEnd)
		d.cfg.Tracer.Record(d.cfg.TraceCtx, "mpid.spill", trace.KindMerge, spillStart, end)
	}
	return nil
}

// takePartBufs returns nParts empty partition buffers: the retained ones
// from the previous spill when the transport allows reuse, fresh pool
// buffers otherwise (ownership then transfers with the message).
func (d *D) takePartBufs(nParts int) [][]byte {
	parts := d.partBufs
	d.partBufs = nil
	if len(parts) == nParts {
		for i := range parts {
			parts[i] = parts[i][:0]
		}
		return parts
	}
	parts = make([][]byte, nParts)
	if est := d.buf.bytes()/nParts + 512; d.cfg.Pool != nil {
		for i := range parts {
			parts[i] = d.cfg.Pool.Get(est)[:0]
		}
	}
	return parts
}

// Flush forces a spill of whatever is buffered, without closing the stream.
// On a shared NodeArena this flushes the whole node's buffer, whichever
// member buffered the pairs.
func (d *D) Flush() error {
	if d.finalized {
		return ErrFinalized
	}
	if !d.isSender {
		return nil
	}
	if d.nodeArena != nil {
		d.nodeArena.mu.Lock()
		defer d.nodeArena.mu.Unlock()
	}
	return d.spill()
}

// completePending waits for outstanding Isends (Async mode).
func (d *D) completePending() error {
	if len(d.pending) == 0 {
		return nil
	}
	err := mpi.WaitAll(d.pending...)
	d.pending = d.pending[:0]
	return err
}
