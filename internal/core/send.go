package core

import (
	"errors"
	"fmt"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mpi"
)

// hashBuffer is the mapper-side hash table of §IV.A: Send buffers pairs
// here, grouped by key, so the combiner can merge values locally before
// anything is serialized or transmitted.
type hashBuffer struct {
	groups map[string][][]byte // key -> value list (insertion grouped)
	keys   []string            // insertion order, for deterministic spills
	bytes  int                 // payload bytes buffered
}

func newHashBuffer() *hashBuffer {
	return &hashBuffer{groups: make(map[string][][]byte)}
}

// combineEvery bounds a key's in-buffer value list: once it reaches this
// length the combiner folds it down. This keeps hot keys from growing
// unbounded slices between spills — the paper puts local combination inside
// the MPI_D_Send routine, and doing it incrementally is what makes that
// cheap ("the aim of combining is to reduce the memory consuming").
const combineEvery = 256

// add buffers one pair; it returns how many pairs the incremental combiner
// eliminated (0 without a combiner).
func (b *hashBuffer) add(key, value []byte, combine CombineFunc) int64 {
	k := string(key)
	vs, ok := b.groups[k]
	if !ok {
		b.keys = append(b.keys, k)
		b.bytes += len(key)
	}
	// Values are copied: Send promises the caller its buffers are free to
	// reuse on return, which the examples rely on when scanning input.
	vs = append(vs, append([]byte(nil), value...))
	b.bytes += len(value)
	var combined int64
	if combine != nil && len(vs) >= combineEvery {
		oldLen, oldBytes := len(vs), 0
		for _, v := range vs {
			oldBytes += len(v)
		}
		vs = combine([]byte(k), vs)
		newBytes := 0
		for _, v := range vs {
			newBytes += len(v)
		}
		b.bytes += newBytes - oldBytes
		combined = int64(oldLen - len(vs))
	}
	b.groups[k] = vs
	return combined
}

func (b *hashBuffer) reset() {
	b.groups = make(map[string][][]byte)
	b.keys = b.keys[:0]
	b.bytes = 0
}

// Send buffers one key-value pair for delivery to the reducer owning its
// partition — MPI_D_Send. It returns quickly: at worst it triggers a spill
// of the buffered table. The caller keeps ownership of key and value.
func (d *D) Send(key, value []byte) error {
	if d.finalized {
		return ErrFinalized
	}
	if !d.isSender {
		return fmt.Errorf("mpid: rank %d is not a sender", d.comm.Rank())
	}
	if !d.sendOpen {
		return errors.New("mpid: send side already closed")
	}
	d.counters.PairsCombined += d.buf.add(key, value, d.cfg.Combiner)
	d.counters.PairsSent++
	if d.buf.bytes >= d.cfg.SpillThreshold {
		return d.spill()
	}
	return nil
}

// SendPair is Send for a kv.Pair.
func (d *D) SendPair(p kv.Pair) error { return d.Send(p.Key, p.Value) }

// spill drains the hash table: combine, partition, realign, transmit. This
// is the heart of MPI-D — it converts the discrete, variable-size key-value
// world into the contiguous fixed-layout buffers MPI moves efficiently.
func (d *D) spill() error {
	if d.buf.bytes == 0 && len(d.buf.keys) == 0 {
		return nil
	}
	d.counters.Spills++

	// In Async mode, complete the previous spill's sends first so at most
	// one spill is in flight — bounded memory, still overlapped.
	if err := d.completePending(); err != nil {
		return err
	}

	nParts := d.numPartitions()
	// Realignment: serialize each key's (possibly combined) value list
	// into its partition's contiguous buffer, in insertion order for
	// determinism.
	parts := make([][]byte, nParts)
	for _, k := range d.buf.keys {
		key := []byte(k)
		values := d.buf.groups[k]
		if d.cfg.Combiner != nil {
			before := len(values)
			values = d.cfg.Combiner(key, values)
			d.counters.PairsCombined += int64(before - len(values))
		}
		if d.cfg.SortValues {
			sortValueList(values)
		}
		p := d.cfg.Partitioner(key, nParts)
		if p < 0 || p >= nParts {
			return fmt.Errorf("mpid: partitioner returned %d for %d partitions", p, nParts)
		}
		parts[p] = kv.AppendKeyList(parts[p], kv.KeyList{Key: key, Values: values})
	}
	d.buf.reset()

	for p, data := range parts {
		if len(data) == 0 {
			continue
		}
		dst := d.partitionOwner(p)
		d.counters.MessagesSent++
		d.counters.BytesSent += int64(len(data))
		if d.cfg.Async {
			d.pending = append(d.pending, d.comm.Isend(dst, DataTag, data))
			continue
		}
		if err := d.comm.Send(dst, DataTag, data); err != nil {
			return err
		}
	}
	return nil
}

// Flush forces a spill of whatever is buffered, without closing the stream.
func (d *D) Flush() error {
	if d.finalized {
		return ErrFinalized
	}
	if !d.isSender {
		return nil
	}
	return d.spill()
}

// completePending waits for outstanding Isends (Async mode).
func (d *D) completePending() error {
	if len(d.pending) == 0 {
		return nil
	}
	err := mpi.WaitAll(d.pending...)
	d.pending = d.pending[:0]
	return err
}
