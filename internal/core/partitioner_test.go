package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ict-repro/mpid/internal/kv"
)

func TestSampleCutsEvenQuantiles(t *testing.T) {
	var sample [][]byte
	for i := 0; i < 1000; i++ {
		sample = append(sample, []byte(fmt.Sprintf("%04d", i)))
	}
	cuts := SampleCuts(sample, 4)
	if len(cuts) != 3 {
		t.Fatalf("got %d cuts, want 3", len(cuts))
	}
	want := []string{"0250", "0500", "0750"}
	for i, c := range cuts {
		if string(c) != want[i] {
			t.Fatalf("cut %d = %q, want %q", i, c, want[i])
		}
	}
}

func TestSampleCutsCollapsesDuplicates(t *testing.T) {
	// A key so hot it covers three quarters of the sample: the three
	// quantile boundaries coincide and must collapse to one cut.
	var sample [][]byte
	for i := 0; i < 750; i++ {
		sample = append(sample, []byte("hot"))
	}
	for i := 0; i < 250; i++ {
		sample = append(sample, []byte(fmt.Sprintf("z%03d", i)))
	}
	cuts := SampleCuts(sample, 4)
	if len(cuts) != 2 {
		t.Fatalf("got %d cuts (%q), want 2", len(cuts), cuts)
	}
}

func TestSampleCutsDegenerate(t *testing.T) {
	if cuts := SampleCuts(nil, 4); cuts != nil {
		t.Fatalf("empty sample produced cuts %q", cuts)
	}
	if cuts := SampleCuts([][]byte{[]byte("a")}, 1); cuts != nil {
		t.Fatalf("n=1 produced cuts %q", cuts)
	}
}

func TestRangePartitionerOrderPreserving(t *testing.T) {
	cuts := [][]byte{[]byte("g"), []byte("p")}
	part := RangePartitioner(cuts)
	cases := []struct {
		key  string
		want int
	}{
		{"", 0}, {"a", 0}, {"f", 0}, {"g", 1}, {"m", 1}, {"p", 2}, {"z", 2},
	}
	for _, c := range cases {
		if got := part([]byte(c.key), 3); got != c.want {
			t.Fatalf("partition(%q) = %d, want %d", c.key, got, c.want)
		}
	}
	// Fewer partitions than cuts+1 must still stay in range.
	if got := part([]byte("z"), 2); got != 1 {
		t.Fatalf("clamped partition = %d, want 1", got)
	}
}

// TestRangePartitionerBalancesSkew is the reason the sampled partitioner
// exists: on Zipf-skewed keys the first-byte partitioner collapses most of
// the data into one range, while cuts sampled from the distribution keep
// every partition within a small factor of the mean.
func TestRangePartitionerBalancesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.5, 1, 9999)
	keys := make([][]byte, 20000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%05d", zipf.Uint64()))
	}
	const n = 8
	sampled := RangePartitioner(SampleCuts(keys, n))

	count := func(part PartitionFunc) []int {
		counts := make([]int, n)
		for _, k := range keys {
			counts[part(k, n)]++
		}
		return counts
	}
	sampledCounts := count(sampled)
	naiveCounts := count(FirstByteRangePartitioner)

	max := func(c []int) int {
		m := 0
		for _, v := range c {
			if v > m {
				m = v
			}
		}
		return m
	}
	mean := len(keys) / n
	if m := max(naiveCounts); m < 9*len(keys)/10 {
		t.Fatalf("expected first-byte partitioner to collapse (all keys share a first byte), max=%d", m)
	}
	// Zipf s=1.5 puts ~45%% of all draws on the single hottest key, so one
	// partition is irreducibly hot; the sampled cuts must still spread the
	// rest instead of collapsing everything into one range.
	if m := max(sampledCounts); m > 6*mean {
		t.Fatalf("sampled partitioner left a partition with %d of %d keys (mean %d): %v",
			m, len(keys), mean, sampledCounts)
	}
	occupied := 0
	for _, v := range sampledCounts {
		if v > 0 {
			occupied++
		}
	}
	if occupied < n/2 {
		t.Fatalf("only %d of %d partitions occupied: %v", occupied, n, sampledCounts)
	}

	// Order preservation: partition index must be monotone in the key.
	for i := 0; i < 5000; i++ {
		a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if kv.Compare(a, b) > 0 {
			a, b = b, a
		}
		if sampled(a, n) > sampled(b, n) {
			t.Fatalf("partition(%q)=%d > partition(%q)=%d breaks range order",
				a, sampled(a, n), b, sampled(b, n))
		}
	}
}
