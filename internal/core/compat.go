package core

import "github.com/ict-repro/mpid/internal/kv"

// Paper-style aliases. Table II of the paper defines the extension as
//
//	void MPI_D_Send(S_KEY_TYPE key, S_VALUE_TYPE value);
//	void MPI_D_Recv(R_KEY_TYPE key, R_VALUE_TYPE value);
//
// plus MPI_D_Init and MPI_D_Finalize. Go code should use the idiomatic
// methods (Init, D.Send, D.Recv, D.Finalize); these wrappers exist so code
// transliterated from the paper's examples (Figure 5) reads one-to-one.

// MPI_D_Init is Init under the paper's name.
//
//nolint:revive // underscore name mirrors the paper's interface
func MPI_D_Init(cfg Config) (*D, error) { return Init(cfg) }

// MPI_D_Send is D.Send under the paper's name.
//
//nolint:revive
func MPI_D_Send(d *D, key, value []byte) error { return d.Send(key, value) }

// MPI_D_Recv is D.Recv under the paper's name.
//
//nolint:revive
func MPI_D_Recv(d *D) (kv.KeyList, error) { return d.RecvKeyList() }

// MPI_D_Finalize is D.Finalize under the paper's name.
//
//nolint:revive
func MPI_D_Finalize(d *D) error { return d.Finalize() }
