package core

import "sync"

// NodeArena is a node-shared send buffer: the in-node-combining idea lifted
// into MPI-D. Where each sender rank normally combines only its own pairs
// before spilling, co-located ranks handed the same NodeArena buffer into
// one arena, so the incremental combiner folds duplicate keys across every
// map task on the node and each key's list ships once per node instead of
// once per rank — strictly fewer shuffle bytes for any workload with
// cross-rank key overlap, at the cost of serializing the co-located
// senders' buffer access behind one mutex.
//
// Usage: create one NodeArena per physical node and set core.Config.NodeArena
// to it on every sender rank of that node (mapred.Job.NodeCombine does this
// for the in-process world, which is one node by construction). Semantics:
//
//   - Send buffers into the shared arena under the arena lock; the spill
//     threshold applies to the node's aggregate buffered bytes.
//   - A spill (threshold or Flush) ships the whole shared buffer from
//     whichever rank triggered it; that rank's counters record the traffic,
//     and aggregate counters across senders stay correct.
//   - CloseSend leaves leftovers buffered until the last co-located member
//     closes, which spills them; every member still emits its own DoneTag
//     markers, and reducers only declare end-of-stream once every sender's
//     marker arrived, so the late shared spill is always consumed.
//
// The shared buffer requires the arena fast path: combining across ranks
// needs one hash table, and the legacy per-pair map buffer was never built
// for sharing. Init rejects NodeArena together with LegacySend.
type NodeArena struct {
	mu      sync.Mutex
	buf     *arenaBuffer
	members int
}

// NewNodeArena creates the shared buffer for one node's sender ranks.
func NewNodeArena() *NodeArena {
	return &NodeArena{buf: newArenaBuffer()}
}

// attach registers one member rank and hands it the shared buffer.
func (na *NodeArena) attach() *arenaBuffer {
	na.mu.Lock()
	defer na.mu.Unlock()
	na.members++
	return na.buf
}

// detachLocked deregisters a member and reports whether it was the last
// one; the caller holds na.mu and, when last, must spill the leftovers
// before releasing it.
func (na *NodeArena) detachLocked() bool {
	na.members--
	return na.members == 0
}
