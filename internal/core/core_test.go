package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mpi"
)

// sumCombiner adds VLong-encoded counts into a single value, the WordCount
// combiner.
func sumCombiner(_ []byte, values [][]byte) [][]byte {
	var total int64
	for _, v := range values {
		n, _, err := kv.ReadVLong(v)
		if err != nil {
			panic(err)
		}
		total += n
	}
	return [][]byte{kv.AppendVLong(nil, total)}
}

func one() []byte { return kv.AppendVLong(nil, 1) }

// runWordCount pushes words from senders through MPI-D and returns the
// merged counts observed at the reducers.
func runWordCount(t *testing.T, cfg Config, nRanks int, wordsBySender map[int][]string) map[string]int64 {
	t.Helper()
	results := make(map[string]int64)
	var resultsMu = make(chan struct{}, 1)
	resultsMu <- struct{}{}

	err := mpi.Run(nRanks, func(c *mpi.Comm) error {
		local := cfg
		local.Comm = c
		d, err := Init(local)
		if err != nil {
			return err
		}
		if d.IsSender() {
			for _, w := range wordsBySender[c.Rank()] {
				if err := d.Send([]byte(w), one()); err != nil {
					return err
				}
			}
			if err := d.CloseSend(); err != nil {
				return err
			}
		}
		if d.IsReducer() {
			for {
				key, values, err := d.Recv()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				var total int64
				for _, v := range values {
					n, _, err := kv.ReadVLong(v)
					if err != nil {
						return err
					}
					total += n
				}
				<-resultsMu
				results[string(key)] += total
				resultsMu <- struct{}{}
			}
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func referenceCounts(wordsBySender map[int][]string) map[string]int64 {
	ref := make(map[string]int64)
	for _, words := range wordsBySender {
		for _, w := range words {
			ref[w]++
		}
	}
	return ref
}

func checkCounts(t *testing.T, got, want map[string]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d distinct keys, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("count[%q] = %d, want %d", k, got[k], w)
		}
	}
}

func sampleWords(senders []int, perSender int, seed int64) map[int][]string {
	vocab := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "mpi", "hadoop"}
	rng := rand.New(rand.NewSource(seed))
	out := make(map[int][]string)
	for _, s := range senders {
		words := make([]string, perSender)
		for i := range words {
			words[i] = vocab[rng.Intn(len(vocab))]
		}
		out[s] = words
	}
	return out
}

func TestWordCountSingleReducer(t *testing.T) {
	words := sampleWords([]int{1, 2, 3}, 200, 1)
	got := runWordCount(t, Config{Reducers: []int{0}, Combiner: sumCombiner}, 4, words)
	checkCounts(t, got, referenceCounts(words))
}

func TestWordCountManyReducers(t *testing.T) {
	words := sampleWords([]int{3, 4, 5, 6}, 300, 2)
	got := runWordCount(t, Config{Reducers: []int{0, 1, 2}, Combiner: sumCombiner}, 7, words)
	checkCounts(t, got, referenceCounts(words))
}

func TestWordCountNoCombiner(t *testing.T) {
	words := sampleWords([]int{1}, 500, 3)
	got := runWordCount(t, Config{Reducers: []int{0}}, 2, words)
	checkCounts(t, got, referenceCounts(words))
}

func TestWordCountTinySpillThreshold(t *testing.T) {
	// Many spills: every few pairs trigger realignment and transmission.
	words := sampleWords([]int{1, 2}, 400, 4)
	got := runWordCount(t, Config{Reducers: []int{0}, Combiner: sumCombiner, SpillThreshold: 16}, 3, words)
	checkCounts(t, got, referenceCounts(words))
}

func TestWordCountAsyncMode(t *testing.T) {
	words := sampleWords([]int{1, 2, 3}, 400, 5)
	got := runWordCount(t, Config{Reducers: []int{0}, Combiner: sumCombiner, SpillThreshold: 64, Async: true}, 4, words)
	checkCounts(t, got, referenceCounts(words))
}

func TestWordCountStreamingMode(t *testing.T) {
	// Streaming may deliver a key multiple times; the aggregate must match.
	words := sampleWords([]int{1, 2}, 300, 6)
	got := runWordCount(t, Config{Reducers: []int{0}, Combiner: sumCombiner, SpillThreshold: 128, Streaming: true}, 3, words)
	checkCounts(t, got, referenceCounts(words))
}

func TestGroupedModeKeysSortedAndUnique(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) error {
		d, err := Init(Config{Comm: c, Reducers: []int{0}})
		if err != nil {
			return err
		}
		if d.IsSender() {
			for _, w := range []string{"delta", "alpha", "charlie", "bravo", "alpha"} {
				if err := d.Send([]byte(w), []byte("v")); err != nil {
					return err
				}
			}
			return d.Finalize()
		}
		var keys []string
		for {
			key, values, err := d.Recv()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			keys = append(keys, string(key))
			if string(key) == "alpha" && len(values) != 4 { // 2 senders x 2 sends
				return fmt.Errorf("alpha has %d values, want 4", len(values))
			}
		}
		if !sort.StringsAreSorted(keys) {
			return fmt.Errorf("keys not sorted: %v", keys)
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] == keys[i-1] {
				return fmt.Errorf("duplicate key %q in grouped mode", keys[i])
			}
		}
		want := []string{"alpha", "bravo", "charlie", "delta"}
		if len(keys) != len(want) {
			return fmt.Errorf("keys = %v, want %v", keys, want)
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRouting(t *testing.T) {
	// Each reducer must only see keys the partitioner assigns to it.
	const nReducers = 3
	err := mpi.Run(4, func(c *mpi.Comm) error {
		d, err := Init(Config{Comm: c, Reducers: []int{1, 2, 3}})
		if err != nil {
			return err
		}
		if d.IsSender() {
			for i := 0; i < 200; i++ {
				if err := d.Send([]byte(fmt.Sprintf("key-%d", i)), []byte("x")); err != nil {
					return err
				}
			}
			return d.Finalize()
		}
		myPartition := c.Rank() - 1
		for {
			key, _, err := d.Recv()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if p := HashPartitioner(key, nReducers); p != myPartition {
				return fmt.Errorf("reducer %d received key %q of partition %d", c.Rank(), key, p)
			}
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCustomPartitioner(t *testing.T) {
	// Route everything to partition 0 regardless of key.
	all0 := func(key []byte, n int) int { return 0 }
	err := mpi.Run(3, func(c *mpi.Comm) error {
		d, err := Init(Config{Comm: c, Reducers: []int{0, 1}, Partitioner: all0})
		if err != nil {
			return err
		}
		if d.IsSender() {
			for i := 0; i < 50; i++ {
				if err := d.Send([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
					return err
				}
			}
			return d.Finalize()
		}
		n := 0
		for {
			_, _, err := d.Recv()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			n++
		}
		if c.Rank() == 1 && n != 0 {
			return fmt.Errorf("reducer 1 got %d keys, want 0", n)
		}
		if c.Rank() == 0 && n != 50 {
			return fmt.Errorf("reducer 0 got %d keys, want 50", n)
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortValuesOption(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		d, err := Init(Config{Comm: c, Reducers: []int{0}, SortValues: true})
		if err != nil {
			return err
		}
		if d.IsSender() {
			for _, v := range []string{"zebra", "apple", "mango"} {
				if err := d.Send([]byte("k"), []byte(v)); err != nil {
					return err
				}
			}
			return d.Finalize()
		}
		_, values, err := d.Recv()
		if err != nil {
			return err
		}
		if !sort.SliceIsSorted(values, func(i, j int) bool { return bytes.Compare(values[i], values[j]) < 0 }) {
			return fmt.Errorf("values not sorted: %q", values)
		}
		if _, _, err := d.Recv(); err != io.EOF {
			return fmt.Errorf("want EOF, got %v", err)
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSenderAlsoReducer(t *testing.T) {
	// Ranks that both send and reduce: close send first, then drain.
	err := mpi.Run(2, func(c *mpi.Comm) error {
		d, err := Init(Config{
			Comm:     c,
			Reducers: []int{0, 1},
			Senders:  []int{0, 1},
		})
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			if err := d.Send([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(c.Rank())}); err != nil {
				return err
			}
		}
		if err := d.CloseSend(); err != nil {
			return err
		}
		seen := 0
		for {
			_, values, err := d.Recv()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if len(values) != 2 { // one from each rank
				return fmt.Errorf("key has %d values, want 2", len(values))
			}
			seen++
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountersAndCombinerEffect(t *testing.T) {
	// The combiner's purpose in the paper is "to reduce the memory
	// consuming and the transmission quantity": with a skewed key set the
	// combined run must ship fewer bytes.
	run := func(combine bool) Counters {
		var counters Counters
		words := make([]string, 3000)
		for i := range words {
			words[i] = "hot" // maximal skew
		}
		err := mpi.Run(2, func(c *mpi.Comm) error {
			cfg := Config{Comm: c, Reducers: []int{0}}
			if combine {
				cfg.Combiner = sumCombiner
			}
			d, err := Init(cfg)
			if err != nil {
				return err
			}
			if d.IsSender() {
				for _, w := range words {
					if err := d.Send([]byte(w), one()); err != nil {
						return err
					}
				}
				if err := d.Finalize(); err != nil {
					return err
				}
				counters = d.Counters()
				return nil
			}
			for {
				if _, _, err := d.Recv(); err == io.EOF {
					break
				} else if err != nil {
					return err
				}
			}
			return d.Finalize()
		})
		if err != nil {
			t.Fatal(err)
		}
		return counters
	}
	with := run(true)
	without := run(false)
	if with.PairsSent != 3000 || without.PairsSent != 3000 {
		t.Fatalf("PairsSent = %d/%d, want 3000", with.PairsSent, without.PairsSent)
	}
	if with.PairsCombined != 2999 {
		t.Errorf("PairsCombined = %d, want 2999", with.PairsCombined)
	}
	if with.BytesSent >= without.BytesSent {
		t.Errorf("combiner did not reduce transmission: %d >= %d", with.BytesSent, without.BytesSent)
	}
	if with.Spills == 0 || with.MessagesSent == 0 {
		t.Errorf("counters not populated: %+v", with)
	}
}

func TestConfigValidation(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, err := Init(Config{Reducers: []int{0}}); err == nil {
			return errors.New("nil Comm accepted")
		}
		if _, err := Init(Config{Comm: c}); err == nil {
			return errors.New("empty Reducers accepted")
		}
		if _, err := Init(Config{Comm: c, Reducers: []int{5}}); err == nil {
			return errors.New("out-of-range reducer accepted")
		}
		if _, err := Init(Config{Comm: c, Reducers: []int{0, 0}}); err == nil {
			return errors.New("duplicate reducer accepted")
		}
		if _, err := Init(Config{Comm: c, Reducers: []int{0}, Senders: []int{9}}); err == nil {
			return errors.New("out-of-range sender accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRoleEnforcement(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		d, err := Init(Config{Comm: c, Reducers: []int{0}})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Reducer may not Send.
			if err := d.Send([]byte("k"), []byte("v")); err == nil {
				return errors.New("reducer Send accepted")
			}
			for {
				if _, _, err := d.Recv(); err == io.EOF {
					break
				} else if err != nil {
					return err
				}
			}
			return d.Finalize()
		}
		// Sender may not Recv.
		if _, _, err := d.Recv(); err == nil {
			return errors.New("sender Recv accepted")
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendAfterFinalizeFails(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		d, err := Init(Config{Comm: c, Reducers: []int{0}})
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := d.Finalize(); err != nil {
				return err
			}
			if err := d.Send([]byte("k"), []byte("v")); !errors.Is(err, ErrFinalized) {
				return fmt.Errorf("Send after Finalize: %v", err)
			}
			if err := d.Finalize(); err != nil { // idempotent
				return err
			}
			return nil
		}
		for {
			if _, _, err := d.Recv(); err == io.EOF {
				break
			} else if err != nil {
				return err
			}
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadPartitionerCaught(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		d, err := Init(Config{
			Comm:        c,
			Reducers:    []int{0},
			Partitioner: func(key []byte, n int) int { return n + 7 },
		})
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := d.Send([]byte("k"), []byte("v")); err != nil {
				return err
			}
			if err := d.Flush(); err == nil {
				return errors.New("out-of-range partition not caught")
			}
			// The buffered pair can never be delivered; the failure is
			// surfaced to the job, which tears the world down.
			return fmt.Errorf("partitioner failure: %w", d.Finalize())
		}
		for {
			if _, _, err := d.Recv(); err == io.EOF {
				break
			} else if err != nil {
				return err // unblocked by teardown
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("bad partitioner did not surface as a job error")
	}
	if !strings.Contains(err.Error(), "partition") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestHashPartitionerProperties(t *testing.T) {
	// Deterministic, in range, and reasonably balanced.
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		p := HashPartitioner(key, 7)
		if p != HashPartitioner(key, 7) {
			t.Fatal("partitioner not deterministic")
		}
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
		counts[p]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("partition %d has %d/7000 keys; poor balance %v", i, c, counts)
		}
	}
}

func TestFirstByteRangePartitioner(t *testing.T) {
	if FirstByteRangePartitioner(nil, 4) != 0 {
		t.Error("empty key should land in partition 0")
	}
	if FirstByteRangePartitioner([]byte{0}, 4) != 0 {
		t.Error("byte 0 should land in partition 0")
	}
	if FirstByteRangePartitioner([]byte{255}, 4) != 3 {
		t.Error("byte 255 should land in last partition")
	}
	// Ordering: partition is monotone in first byte.
	prev := 0
	for b := 0; b < 256; b++ {
		p := FirstByteRangePartitioner([]byte{byte(b)}, 5)
		if p < prev {
			t.Fatalf("partition decreased at byte %d", b)
		}
		prev = p
	}
}

func TestRandomizedEquivalenceProperty(t *testing.T) {
	// Property: for random workloads, spill thresholds and reducer
	// counts, grouped MPI-D output always equals the sequential reference.
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		nRanks := 2 + rng.Intn(5)
		nReducers := 1 + rng.Intn(nRanks-1)
		reducers := make([]int, nReducers)
		for i := range reducers {
			reducers[i] = i
		}
		var senders []int
		for r := nReducers; r < nRanks; r++ {
			senders = append(senders, r)
		}
		if len(senders) == 0 {
			continue
		}
		words := sampleWords(senders, 50+rng.Intn(300), int64(trial))
		cfg := Config{
			Reducers:       reducers,
			Combiner:       sumCombiner,
			SpillThreshold: 1 << uint(4+rng.Intn(10)),
			Async:          rng.Intn(2) == 0,
		}
		got := runWordCount(t, cfg, nRanks, words)
		checkCounts(t, got, referenceCounts(words))
	}
}

func TestHashPartitionerQuickProperties(t *testing.T) {
	// quick.Check: for arbitrary keys and partition counts, the hash-mod
	// selector is deterministic and in range.
	f := func(key []byte, n uint8) bool {
		parts := int(n%32) + 1
		p := HashPartitioner(key, parts)
		return p >= 0 && p < parts && p == HashPartitioner(key, parts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFirstByteRangePartitionerQuickProperties(t *testing.T) {
	// quick.Check: in range, deterministic, monotone in the first byte.
	f := func(a, b byte, n uint8) bool {
		parts := int(n%16) + 1
		pa := FirstByteRangePartitioner([]byte{a}, parts)
		pb := FirstByteRangePartitioner([]byte{b}, parts)
		if pa < 0 || pa >= parts || pb < 0 || pb >= parts {
			return false
		}
		if a <= b {
			return pa <= pb
		}
		return pb <= pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupedRecvEqualsReferenceQuick(t *testing.T) {
	// quick.Check over the whole library: arbitrary small workloads pushed
	// through MPI-D in grouped mode always reproduce the reference
	// multiset. Complements the seeded randomized test with
	// generator-driven inputs.
	f := func(raw [][]byte, spill uint16) bool {
		if len(raw) == 0 {
			return true
		}
		words := make([]string, 0, len(raw))
		for _, r := range raw {
			if len(r) == 0 {
				r = []byte{'x'}
			}
			if len(r) > 16 {
				r = r[:16]
			}
			words = append(words, string(r))
		}
		ref := make(map[string]int64)
		for _, w := range words {
			ref[w]++
		}
		got := make(map[string]int64)
		err := mpi.Run(2, func(c *mpi.Comm) error {
			d, err := Init(Config{
				Comm:           c,
				Reducers:       []int{0},
				SpillThreshold: int(spill%512) + 1,
			})
			if err != nil {
				return err
			}
			if d.IsSender() {
				for _, w := range words {
					if err := d.Send([]byte(w), one()); err != nil {
						return err
					}
				}
				return d.Finalize()
			}
			for {
				key, values, err := d.Recv()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				got[string(key)] += int64(len(values))
			}
			return d.Finalize()
		})
		if err != nil {
			return false
		}
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPaperStyleAliases(t *testing.T) {
	// The Table II names must behave identically to the methods.
	err := mpi.Run(2, func(c *mpi.Comm) error {
		d, err := MPI_D_Init(Config{Comm: c, Reducers: []int{0}})
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := MPI_D_Send(d, []byte("k"), []byte("v")); err != nil {
				return err
			}
			return MPI_D_Finalize(d)
		}
		klist, err := MPI_D_Recv(d)
		if err != nil {
			return err
		}
		if string(klist.Key) != "k" || len(klist.Values) != 1 {
			return fmt.Errorf("MPI_D_Recv = %+v", klist)
		}
		if _, err := MPI_D_Recv(d); err != io.EOF {
			return fmt.Errorf("want EOF, got %v", err)
		}
		return MPI_D_Finalize(d)
	})
	if err != nil {
		t.Fatal(err)
	}
}
