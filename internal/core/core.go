// Package core implements MPI-D, the paper's contribution: a minimal
// key-value extension to MPI for data-intensive applications (§III-IV).
//
// The paper adds one pair of calls to the MPI standard:
//
//	void MPI_D_Send(S_KEY_TYPE key, S_VALUE_TYPE value);
//	void MPI_D_Recv(R_KEY_TYPE key, R_VALUE_TYPE value);
//
// plus MPI_D_Init / MPI_D_Finalize. In Go these become Init returning a *D
// whose Send, Recv and Finalize methods carry the same semantics:
//
//   - Send(key, value) is called by mappers. The pair is buffered in a hash
//     table and the call returns immediately ("aims to achieve much more
//     overlapping between computing and communication"). A user combiner
//     merges values of equal keys locally. When the buffer exceeds a
//     threshold, pairs are spilled: partitioned by a hash-mod selector,
//     realigned from the discrete hash table into contiguous, densely
//     serialized partition buffers, and shipped with plain MPI sends —
//     destination ranks are assigned automatically from the partition
//     number, so mappers never name a destination (§III, third challenge).
//   - Recv() is called by reducers. It receives with MPI's wildcard
//     source, reverse-realigns the contiguous buffers back into key/value
//     lists and hands them to the application, merging partial lists from
//     different mappers per key (grouped mode) or streaming them as they
//     arrive (streaming mode).
//   - Finalize() flushes remaining buffered pairs and tears the instance
//     down; reducers observe end-of-stream once every sender finalized.
//
// Communication details are entirely hidden from the application, which is
// the point: "the communication process can be automatically completed in
// MPI-D library space."
package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/ict-repro/mpid/internal/bufpool"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/mpi"
	"github.com/ict-repro/mpid/internal/trace"
)

// Reserved user tags for MPI-D traffic on the underlying communicator.
// Applications sharing the communicator must avoid these.
const (
	// DataTag carries realigned partition buffers.
	DataTag = 0x4D5044 // "MPD"
	// DoneTag carries end-of-stream markers.
	DoneTag = DataTag + 1
)

// ErrFinalized is returned by operations on a finalized instance.
var ErrFinalized = errors.New("mpid: instance finalized")

// CombineFunc merges the accumulated values of one key into a (usually
// shorter) list — the paper's local combiner, "commonly ... assigned as the
// reduce function". It must be pure: same inputs, same outputs.
type CombineFunc func(key []byte, values [][]byte) [][]byte

// PartitionFunc maps a key to a partition in [0, n). The default is the
// hash-mod selector, "similar to the HashPartitioner in the Hadoop
// MapReduce framework".
type PartitionFunc func(key []byte, n int) int

// Config configures an MPI-D instance. Comm and Reducers are required.
type Config struct {
	// Comm is the underlying MPI communicator. MPI-D is deliberately "a
	// convenience high-level library ... built on top of MPI".
	Comm *mpi.Comm
	// Reducers lists the ranks acting as reducers; partition p is owned
	// by Reducers[p].
	Reducers []int
	// Senders lists the ranks that will call Send (mappers). Reducers use
	// it to count end-of-stream markers. Default: every rank not in
	// Reducers.
	Senders []int
	// Combiner optionally merges values per key before transmission.
	Combiner CombineFunc
	// Partitioner overrides the hash-mod partition selector.
	Partitioner PartitionFunc
	// SpillThreshold is the buffered payload size in bytes that triggers
	// a spill ("when the hash table buffer exceeds a particular size").
	// Default 1 MiB.
	SpillThreshold int
	// SortValues sorts each key's value list during realignment, the
	// on-demand sorting hook from §IV.A. Off by default.
	SortValues bool
	// Async ships spilled partitions with MPI_Isend so map computation
	// overlaps communication (§IV.A future work). Sends are then
	// completed at the next spill or at Finalize.
	Async bool
	// Streaming makes Recv hand over key/value-list fragments as they
	// arrive instead of merging per key across mappers first. Uses
	// constant reducer memory, but a key may be delivered more than once
	// (with disjoint value lists), as in the paper's streaming reducer.
	Streaming bool

	// NodeArena, when set on a sender rank, replaces its private send
	// buffer with the given node-shared arena, so the incremental combiner
	// folds keys across every co-located sender before anything ships —
	// in-node combining. All co-located senders must receive the same
	// instance; access is serialized behind its mutex. Incompatible with
	// LegacySend. See NodeArena for the full semantics.
	NodeArena *NodeArena

	// LegacySend selects the original map-based send buffer (one
	// allocation per pair, map rebuilt per spill) instead of the arena
	// buffer. Kept as the A/B baseline; the two produce byte-identical
	// spill streams.
	LegacySend bool
	// LegacyGroup selects the original grouped receive drain — buffer
	// every fragment, sort once, drain — instead of the streaming k-way
	// merge. Kept as the A/B baseline; the two produce byte-identical
	// Recv streams.
	LegacyGroup bool
	// MergeFactor is the grouped receiver's merge fan-in: a background
	// pass folds the oldest MergeFactor runs whenever that many are
	// pending. Default 10.
	MergeFactor int
	// Pool supplies partition serialization buffers on the send side and
	// recycles consumed merge runs on the receive side (when the transport
	// does not bring its own pool). Optional; nil allocates.
	Pool *bufpool.Pool
	// Metrics, when set, receives the mpid.spill / mpid.realign /
	// mpid.recv.merge timers and the mpid.* arena/pool counters.
	Metrics *metrics.Registry
	// Tracer, when set, records spill/realign/merge spans under TraceCtx.
	Tracer *trace.Tracer
	// TraceCtx is the parent span context for recorded spans.
	TraceCtx trace.Context
}

// Counters expose what the library did, for tests, the harness and the
// ablation benchmarks.
type Counters struct {
	// PairsSent counts Send calls.
	PairsSent int64
	// PairsCombined counts pairs eliminated by the combiner.
	PairsCombined int64
	// Spills counts spill rounds (including the final flush).
	Spills int64
	// MessagesSent counts MPI messages carrying partition data.
	MessagesSent int64
	// BytesSent counts realigned payload bytes shipped.
	BytesSent int64
	// PairsReceived counts pairs decoded on the receive side.
	PairsReceived int64
}

// D is one rank's MPI-D instance.
type D struct {
	cfg       Config
	comm      *mpi.Comm
	isSender  bool
	isReducer bool

	// Send side.
	buf        sendBuffer
	nodeArena  *NodeArena     // shared buffer, when node combining; buf aliases its arena
	partBufs   [][]byte       // partition buffers retained across spills
	reuseParts bool           // transport copies payloads, so retaining is safe
	pending    []*mpi.Request // in-flight Isends (Async mode)
	sendOpen   bool
	finalized  bool

	// Receive side.
	recvState *receiver

	// Observability (all nil-safe when Config.Metrics is unset).
	spillTimer   *metrics.Timer
	realignTimer *metrics.Timer
	mergeTimer   *metrics.Timer
	partReuse    *metrics.Counter

	counters Counters
}

// Init creates the MPI-D environment on this rank — MPI_D_Init. Every rank
// of the communicator participating in the exchange must call it with an
// equivalent configuration.
func Init(cfg Config) (*D, error) {
	if cfg.Comm == nil {
		return nil, errors.New("mpid: Config.Comm is required")
	}
	if len(cfg.Reducers) == 0 {
		return nil, errors.New("mpid: Config.Reducers is required")
	}
	size := cfg.Comm.Size()
	inReducers := make(map[int]bool, len(cfg.Reducers))
	for _, r := range cfg.Reducers {
		if r < 0 || r >= size {
			return nil, fmt.Errorf("mpid: reducer rank %d out of range [0,%d)", r, size)
		}
		if inReducers[r] {
			return nil, fmt.Errorf("mpid: reducer rank %d listed twice", r)
		}
		inReducers[r] = true
	}
	if cfg.Senders == nil {
		for r := 0; r < size; r++ {
			if !inReducers[r] {
				cfg.Senders = append(cfg.Senders, r)
			}
		}
	}
	inSenders := make(map[int]bool, len(cfg.Senders))
	for _, r := range cfg.Senders {
		if r < 0 || r >= size {
			return nil, fmt.Errorf("mpid: sender rank %d out of range [0,%d)", r, size)
		}
		inSenders[r] = true
	}
	if cfg.SpillThreshold <= 0 {
		cfg.SpillThreshold = 1 << 20
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = HashPartitioner
	}
	rank := cfg.Comm.Rank()
	d := &D{
		cfg:       cfg,
		comm:      cfg.Comm,
		isSender:  inSenders[rank],
		isReducer: inReducers[rank],
		sendOpen:  inSenders[rank],
	}
	d.spillTimer = cfg.Metrics.Timer("mpid.spill")
	d.realignTimer = cfg.Metrics.Timer("mpid.realign")
	d.mergeTimer = cfg.Metrics.Timer("mpid.recv.merge")
	d.partReuse = cfg.Metrics.Counter("mpid.spill.partbuf.reused")
	if d.isSender {
		switch {
		case cfg.NodeArena != nil:
			if cfg.LegacySend {
				return nil, errors.New("mpid: Config.NodeArena requires the arena send buffer (unset LegacySend)")
			}
			d.nodeArena = cfg.NodeArena
			d.buf = cfg.NodeArena.attach()
		case cfg.LegacySend:
			d.buf = newHashBuffer()
		default:
			d.buf = newArenaBuffer()
		}
		// Partition buffers may only be retained across spills when the
		// transport copies payloads before send returns (TCP); the
		// in-process transport hands the slice itself to the receiver.
		d.reuseParts = cfg.Comm.SendCopies()
	}
	if d.isReducer {
		d.recvState = newReceiver(d)
	}
	return d, nil
}

// Counters returns a snapshot of this instance's counters.
func (d *D) Counters() Counters { return d.counters }

// IsSender reports whether this rank may call Send.
func (d *D) IsSender() bool { return d.isSender }

// IsReducer reports whether this rank may call Recv.
func (d *D) IsReducer() bool { return d.isReducer }

// partitionOwner returns the rank owning partition p.
func (d *D) partitionOwner(p int) int { return d.cfg.Reducers[p] }

// numPartitions returns the partition count (= number of reducers).
func (d *D) numPartitions() int { return len(d.cfg.Reducers) }

// Finalize flushes buffered pairs, emits end-of-stream to every reducer and
// marks the instance finalized — MPI_D_Finalize. It is idempotent.
func (d *D) Finalize() error {
	if d.finalized {
		return nil
	}
	if err := d.CloseSend(); err != nil {
		return err
	}
	// Return retained partition buffers and publish pool effectiveness.
	for _, b := range d.partBufs {
		d.cfg.Pool.Put(b)
	}
	d.partBufs = nil
	if d.cfg.Pool != nil {
		s := d.cfg.Pool.Stats()
		d.cfg.Metrics.Gauge("mpid.pool.gets").Set(s.Gets)
		d.cfg.Metrics.Gauge("mpid.pool.hits").Set(s.Hits)
		d.cfg.Metrics.Gauge("mpid.pool.puts").Set(s.Puts)
	}
	d.finalized = true
	return nil
}

// CloseSend flushes this rank's buffer and tells every reducer this sender
// is done, without tearing down the receive side. A rank that both sends
// and receives calls CloseSend before draining Recv.
//
// On a shared NodeArena, only the last co-located member to close spills
// the leftovers; earlier closers leave them buffered so the cross-rank
// combine stays maximal. Every member still emits its own DoneTag markers,
// and reducers drain data until all markers arrived, so the late shared
// spill is always consumed.
func (d *D) CloseSend() error {
	if !d.isSender || !d.sendOpen {
		return nil
	}
	if d.nodeArena != nil {
		d.nodeArena.mu.Lock()
		var err error
		if d.nodeArena.detachLocked() {
			err = d.spill()
		}
		d.nodeArena.mu.Unlock()
		if err != nil {
			return err
		}
	} else if err := d.spill(); err != nil {
		return err
	}
	if err := d.completePending(); err != nil {
		return err
	}
	for p := 0; p < d.numPartitions(); p++ {
		if err := d.comm.Send(d.partitionOwner(p), DoneTag, nil); err != nil {
			return err
		}
	}
	d.sendOpen = false
	return nil
}

// --------------------------------------------------------------------------
// Partitioners

// HashPartitioner is the default hash-mod partition selector. The hash is
// FNV-1a; partition = hash mod n, mirroring Hadoop's
// (key.hashCode() & MaxInt) % numReduceTasks.
func HashPartitioner(key []byte, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}

// FirstByteRangePartitioner splits keys by first byte into n contiguous
// ranges — the original sort-friendly partitioner. It assumes first bytes
// are uniform over the whole byte range, which real key distributions are
// not: skewed or narrow-alphabet keys pile into a handful of partitions.
// Kept as the naive baseline; use RangePartitioner over SampleCuts for
// real distributions (TeraSort's sampled partitioner).
func FirstByteRangePartitioner(key []byte, n int) int {
	if len(key) == 0 {
		return 0
	}
	p := int(key[0]) * n / 256
	if p >= n {
		p = n - 1
	}
	return p
}

// SampleCuts derives at most n-1 range boundaries from a key sample, the
// TeraSort recipe: sort the sample and take evenly spaced order statistics,
// so each resulting range holds roughly the same share of the sampled
// distribution however skewed it is. Adjacent duplicate boundaries (a key
// so hot it spans several quantiles) are collapsed, so heavily skewed
// samples may yield fewer cuts — correctness is unaffected, equal keys
// always land in one partition. The sample is not modified.
func SampleCuts(sample [][]byte, n int) [][]byte {
	if n <= 1 || len(sample) == 0 {
		return nil
	}
	sorted := make([][]byte, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(i, j int) bool { return kv.Compare(sorted[i], sorted[j]) < 0 })
	var cuts [][]byte
	for i := 1; i < n; i++ {
		cut := sorted[i*len(sorted)/n]
		if len(cuts) > 0 && kv.Compare(cuts[len(cuts)-1], cut) == 0 {
			continue
		}
		cuts = append(cuts, append([]byte(nil), cut...))
	}
	return cuts
}

// RangePartitioner builds a PartitionFunc from sorted range boundaries
// (normally SampleCuts output): keys below cuts[0] map to partition 0, keys
// in [cuts[i-1], cuts[i]) to partition i, keys at or above the last cut to
// partition len(cuts). Concatenating reducer outputs in partition order
// then yields a globally sorted sequence. The function is pure and
// deterministic, so every engine running the same job partitions
// identically — a requirement of the cross-engine equality gates.
func RangePartitioner(cuts [][]byte) PartitionFunc {
	owned := make([][]byte, len(cuts))
	for i, c := range cuts {
		owned[i] = append([]byte(nil), c...)
	}
	return func(key []byte, n int) int {
		p := sort.Search(len(owned), func(i int) bool { return kv.Compare(key, owned[i]) < 0 })
		if p >= n {
			p = n - 1
		}
		return p
	}
}

// sortValueList orders a value list lexicographically (SortValues option).
func sortValueList(values [][]byte) {
	sort.Slice(values, func(i, j int) bool { return kv.Compare(values[i], values[j]) < 0 })
}
