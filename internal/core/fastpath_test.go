package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mpi"
)

// ---------------------------------------------------------------------------
// Send-buffer accounting (satellite: incremental byte accounting regression)

// truePayload recomputes a buffer's payload byte count the slow way: each
// key once plus every buffered value.
func truePayload(t *testing.T, b sendBuffer) int {
	t.Helper()
	total := 0
	err := b.forEachSorted(func(key []byte, values [][]byte) error {
		total += len(key)
		for _, v := range values {
			total += len(v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestSendBufferAccountingAcrossCombineAndSpillCycles(t *testing.T) {
	impls := map[string]func() sendBuffer{
		"arena":  func() sendBuffer { return newArenaBuffer() },
		"legacy": func() sendBuffer { return newHashBuffer() },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			b := mk()
			// Three fill/spill cycles; the hot key crosses combineEvery
			// several times per cycle, so the incremental combiner's
			// accounting adjustments are exercised repeatedly.
			for cycle := 0; cycle < 3; cycle++ {
				for i := 0; i < 3*combineEvery; i++ {
					key := []byte(fmt.Sprintf("key-%d", i%5))
					if i%2 == 0 {
						key = []byte("hot")
					}
					b.add(key, kv.AppendVLong(nil, int64(i%9+1)), sumCombiner)
					if i%257 == 0 {
						if got, want := b.bytes(), truePayload(t, b); got != want {
							t.Fatalf("cycle %d pair %d: bytes() = %d, true payload %d", cycle, i, got, want)
						}
					}
				}
				if got, want := b.bytes(), truePayload(t, b); got != want {
					t.Fatalf("cycle %d end: bytes() = %d, true payload %d", cycle, got, want)
				}
				b.reset()
				if b.bytes() != 0 || !b.empty() {
					t.Fatalf("cycle %d: reset left bytes=%d empty=%v", cycle, b.bytes(), b.empty())
				}
			}
		})
	}
}

func TestArenaBufferGrowAndChains(t *testing.T) {
	b := newArenaBuffer()
	// Far more distinct keys than the initial slot table holds.
	const keys = 10 * arenaInitSlots
	for round := 0; round < 3; round++ {
		for i := 0; i < keys; i++ {
			b.add([]byte(fmt.Sprintf("key-%05d", i)), []byte{byte(round)}, nil)
		}
	}
	seen := 0
	prev := []byte(nil)
	err := b.forEachSorted(func(key []byte, values [][]byte) error {
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			return fmt.Errorf("keys out of order: %q then %q", prev, key)
		}
		prev = append(prev[:0], key...)
		if len(values) != 3 {
			return fmt.Errorf("key %q has %d values, want 3", key, len(values))
		}
		for round, v := range values {
			if len(v) != 1 || v[0] != byte(round) {
				return fmt.Errorf("key %q value %d = %v (chain order broken)", key, round, v)
			}
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != keys {
		t.Fatalf("iterated %d keys, want %d", seen, keys)
	}
}

// ---------------------------------------------------------------------------
// Typed unexpected-tag error (satellite)

func TestUnexpectedTagReturnsTypedError(t *testing.T) {
	var recvErr error
	err := mpi.Run(2, func(c *mpi.Comm) error {
		d, err := Init(Config{Comm: c, Reducers: []int{0}, Senders: []int{1}})
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := d.Send([]byte("alpha"), kv.AppendVLong(nil, 1)); err != nil {
				return err
			}
			if err := d.Flush(); err != nil {
				return err
			}
			// A stray, off-protocol message lands mid-stream, before the
			// Done marker.
			if err := c.Send(0, 7777, []byte("not mpid traffic")); err != nil {
				return err
			}
			return d.Finalize()
		}
		for {
			_, _, err := d.Recv()
			if err == io.EOF {
				return errors.New("reducer reached EOF without seeing the stray tag")
			}
			if err != nil {
				recvErr = err
				return nil // swallow so mpi.Run reports no error; we assert below
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var tagErr *UnexpectedTagError
	if !errors.As(recvErr, &tagErr) {
		t.Fatalf("Recv error = %v, want *UnexpectedTagError", recvErr)
	}
	if tagErr.Tag != 7777 || tagErr.Source != 1 {
		t.Fatalf("typed error = %+v, want tag 7777 from rank 1", tagErr)
	}
}

// ---------------------------------------------------------------------------
// Optimized-vs-legacy equivalence (satellite)

// streamEntry is one Recv result with its bytes deep-copied out of the
// library's buffers.
type streamEntry struct {
	key    []byte
	values [][]byte
}

// collectStreams runs one MPI-D exchange and captures every reducer's exact
// Recv stream, in order.
func collectStreams(t *testing.T, cfg Config, nRanks int, pairsBySender map[int][]kv.Pair) map[int][]streamEntry {
	t.Helper()
	streams := make(map[int][]streamEntry)
	var mu sync.Mutex
	err := mpi.Run(nRanks, func(c *mpi.Comm) error {
		local := cfg
		local.Comm = c
		d, err := Init(local)
		if err != nil {
			return err
		}
		if d.IsSender() {
			for _, p := range pairsBySender[c.Rank()] {
				if err := d.SendPair(p); err != nil {
					return err
				}
			}
			if err := d.CloseSend(); err != nil {
				return err
			}
		}
		if d.IsReducer() {
			var local []streamEntry
			for {
				key, values, err := d.Recv()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				e := streamEntry{key: append([]byte(nil), key...)}
				for _, v := range values {
					e.values = append(e.values, append([]byte(nil), v...))
				}
				local = append(local, e)
			}
			mu.Lock()
			streams[c.Rank()] = local
			mu.Unlock()
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	return streams
}

func streamsEqual(t *testing.T, legacy, fast map[int][]streamEntry) {
	t.Helper()
	if len(legacy) != len(fast) {
		t.Fatalf("reducer count: legacy %d, fast %d", len(legacy), len(fast))
	}
	for rank, ls := range legacy {
		fs := fast[rank]
		if len(ls) != len(fs) {
			t.Fatalf("rank %d: legacy emitted %d entries, fast %d", rank, len(ls), len(fs))
		}
		for i := range ls {
			if !bytes.Equal(ls[i].key, fs[i].key) {
				t.Fatalf("rank %d entry %d: key %q vs %q", rank, i, ls[i].key, fs[i].key)
			}
			if len(ls[i].values) != len(fs[i].values) {
				t.Fatalf("rank %d key %q: %d values vs %d", rank, ls[i].key, len(ls[i].values), len(fs[i].values))
			}
			for j := range ls[i].values {
				if !bytes.Equal(ls[i].values[j], fs[i].values[j]) {
					t.Fatalf("rank %d key %q value %d: %x vs %x", rank, ls[i].key, j, ls[i].values[j], fs[i].values[j])
				}
			}
		}
	}
}

// genPairs produces a deterministic workload with hot keys (deep combiner
// folds), a long key tail and varied values.
func genPairs(n int, salt byte) []kv.Pair {
	pairs := make([]kv.Pair, n)
	for i := range pairs {
		var key []byte
		switch {
		case i%3 == 0:
			key = []byte("hot")
		case i%3 == 1:
			key = []byte(fmt.Sprintf("warm-%d", i%7))
		default:
			key = []byte(fmt.Sprintf("cold-%04d", i))
		}
		pairs[i] = kv.Pair{Key: key, Value: kv.AppendVLong(nil, int64(int(salt)+i%11+1))}
	}
	return pairs
}

// TestGroupedStreamByteIdentical drives the same single-sender workload
// through the legacy core (LegacySend + LegacyGroup) and the optimized core
// and requires the reducer-visible Recv streams to match byte for byte. A
// single sender makes arrival order deterministic (per-pair FIFO), so this
// is an exact check; the tiny spill threshold forces many runs and the
// small merge factor forces background ordered passes.
func TestGroupedStreamByteIdentical(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"plain", func(c *Config) {}},
		{"combiner", func(c *Config) { c.Combiner = sumCombiner }},
		{"sortValues", func(c *Config) { c.SortValues = true }},
		{"combiner+sortValues", func(c *Config) { c.Combiner = sumCombiner; c.SortValues = true }},
		{"async", func(c *Config) { c.Async = true }},
	}
	pairs := map[int][]kv.Pair{1: genPairs(4000, 3)}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			base := Config{Reducers: []int{0}, Senders: []int{1}, SpillThreshold: 512, MergeFactor: 3}
			v.mut(&base)
			legacyCfg := base
			legacyCfg.LegacySend, legacyCfg.LegacyGroup = true, true
			legacy := collectStreams(t, legacyCfg, 2, pairs)
			fast := collectStreams(t, base, 2, pairs)
			streamsEqual(t, legacy, fast)
		})
	}
}

// TestStreamingStreamByteIdentical checks the arena send buffer against the
// legacy one in streaming mode: fragments must arrive in the same order
// with the same bytes, since both paths serialize spills in sorted key
// order and a single sender's messages are FIFO.
func TestStreamingStreamByteIdentical(t *testing.T) {
	pairs := map[int][]kv.Pair{1: genPairs(3000, 5)}
	base := Config{Reducers: []int{0}, Senders: []int{1}, SpillThreshold: 768, Streaming: true, Combiner: sumCombiner}
	legacyCfg := base
	legacyCfg.LegacySend = true
	legacy := collectStreams(t, legacyCfg, 2, pairs)
	fast := collectStreams(t, base, 2, pairs)
	streamsEqual(t, legacy, fast)
}

// TestGroupedMultiSenderAggregateEquivalent compares legacy and optimized
// cores under concurrent senders. Arrival order across senders is racy, so
// the per-key value order is not deterministic; keys (sorted, exactly once)
// and per-key value multisets must still agree.
func TestGroupedMultiSenderAggregateEquivalent(t *testing.T) {
	pairs := map[int][]kv.Pair{2: genPairs(2500, 1), 3: genPairs(2500, 9), 4: genPairs(1000, 4)}
	base := Config{Reducers: []int{0, 1}, Senders: []int{2, 3, 4}, SpillThreshold: 1024, MergeFactor: 3, Combiner: sumCombiner}
	legacyCfg := base
	legacyCfg.LegacySend, legacyCfg.LegacyGroup = true, true
	legacy := collectStreams(t, legacyCfg, 5, pairs)
	fast := collectStreams(t, base, 5, pairs)

	normalize := func(streams map[int][]streamEntry) map[string][]string {
		out := make(map[string][]string)
		for rank, entries := range streams {
			for _, e := range entries {
				k := fmt.Sprintf("%d/%s", rank, e.key)
				if _, dup := out[k]; dup {
					t.Fatalf("rank %d emitted key %q twice", rank, e.key)
				}
				var vs []string
				for _, v := range e.values {
					vs = append(vs, string(v))
				}
				sortStringsStable(vs)
				out[k] = vs
			}
		}
		return out
	}
	l, f := normalize(legacy), normalize(fast)
	if len(l) != len(f) {
		t.Fatalf("distinct (rank, key) count: legacy %d, fast %d", len(l), len(f))
	}
	for k, lv := range l {
		fv := f[k]
		if len(lv) != len(fv) {
			t.Fatalf("%s: %d values vs %d", k, len(lv), len(fv))
		}
		for i := range lv {
			if lv[i] != fv[i] {
				t.Fatalf("%s value %d: %x vs %x", k, i, lv[i], fv[i])
			}
		}
	}
}

func sortStringsStable(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ---------------------------------------------------------------------------
// TCP faults: the fast path keeps PR 1's retry semantics (satellite)

// TestFastPathTCPFaultRetry injects a one-shot write fault under an MPI-D
// exchange over the real TCP transport: the sender's flush must surface the
// injected error (not silently lose the frame), and re-sending over the
// same world must redial and deliver everything — the transport retry
// semantics PR 1 established, now exercised through the pooled
// eager/rendezvous write path.
func TestFastPathTCPFaultRetry(t *testing.T) {
	sizes := []struct {
		name    string
		valSize int
	}{
		{"eager", 8},             // whole spill below the rendezvous threshold
		{"rendezvous", 96 << 10}, // single value forces the direct-write path
	}
	for _, sz := range sizes {
		t.Run(sz.name, func(t *testing.T) {
			inj := faults.New(1, faults.Rule{Component: "mpi.rank1", Operation: "write", Until: 1, Action: faults.Drop})
			w, err := mpi.NewTCPWorldWithFaults(2, inj)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()

			value := bytes.Repeat([]byte{0xAB}, sz.valSize)
			var got int
			var wg sync.WaitGroup
			wg.Add(1)
			errCh := make(chan error, 2)
			go func() { // reducer, rank 0
				defer wg.Done()
				d, err := Init(Config{Comm: w.Comm(0), Reducers: []int{0}, Senders: []int{1}})
				if err != nil {
					errCh <- err
					return
				}
				for {
					_, values, err := d.Recv()
					if err == io.EOF {
						return
					}
					if err != nil {
						errCh <- err
						return
					}
					got += len(values)
				}
			}()

			d, err := Init(Config{Comm: w.Comm(1), Reducers: []int{0}, Senders: []int{1}})
			if err != nil {
				t.Fatal(err)
			}
			send := func() error {
				for i := 0; i < 5; i++ {
					if err := d.Send([]byte(fmt.Sprintf("key-%d", i)), value); err != nil {
						return err
					}
				}
				return d.Flush()
			}
			// First attempt: the injected drop must surface as an error.
			if err := send(); !faults.IsInjected(err) {
				t.Fatalf("first send attempt: err = %v, want injected fault", err)
			}
			// Retry on the same world: the transport redials and delivers.
			if err := send(); err != nil {
				t.Fatalf("retry after injected fault: %v", err)
			}
			if err := d.Finalize(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if got != 5 {
				t.Fatalf("reducer received %d pairs, want the 5 retried ones", got)
			}
		})
	}
}
