package core

import (
	"fmt"
	"sort"
	"testing"

	"github.com/ict-repro/mpid/internal/bufpool"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/shuffle"
)

// Micro-benchmarks for the MPI-D hot path. Run with -benchmem (ReportAllocs
// is set regardless) and compare the arena/merged sub-benchmarks against
// their legacy siblings: the allocs/op column is the contract.

// benchKeys is a mixed workload: one hot key, a warm band, a cold tail.
func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		switch {
		case i%3 == 0:
			keys[i] = []byte("hot")
		case i%3 == 1:
			keys[i] = []byte(fmt.Sprintf("warm-%d", i%17))
		default:
			keys[i] = []byte(fmt.Sprintf("cold-%05d", i%2048))
		}
	}
	return keys
}

// BenchmarkSend measures buffering one pair (the Send fast path minus the
// MPI world), including the incremental combiner and the spill-cycle reset.
func BenchmarkSend(b *testing.B) {
	impls := []struct {
		name string
		mk   func() sendBuffer
	}{
		{"arena", func() sendBuffer { return newArenaBuffer() }},
		{"legacy", func() sendBuffer { return newHashBuffer() }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			buf := impl.mk()
			keys := benchKeys(4096)
			value := kv.AppendVLong(nil, 1)
			b.ReportAllocs()
			b.SetBytes(int64(len(value) + 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.add(keys[i%len(keys)], value, sumCombiner)
				if buf.bytes() >= 1<<20 {
					buf.reset()
				}
			}
		})
	}
}

// BenchmarkSpill measures one full fill + realign cycle: buffer 4096 pairs,
// serialize them partition-by-partition in sorted key order into retained
// buffers, reset. This is spill() minus the transport.
func BenchmarkSpill(b *testing.B) {
	impls := []struct {
		name string
		mk   func() sendBuffer
	}{
		{"arena", func() sendBuffer { return newArenaBuffer() }},
		{"legacy", func() sendBuffer { return newHashBuffer() }},
	}
	const nParts = 4
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			buf := impl.mk()
			keys := benchKeys(4096)
			value := kv.AppendVLong(nil, 1)
			parts := make([][]byte, nParts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, k := range keys {
					buf.add(k, value, sumCombiner)
				}
				for p := range parts {
					parts[p] = parts[p][:0]
				}
				err := buf.forEachSorted(func(key []byte, values [][]byte) error {
					p := HashPartitioner(key, nParts)
					parts[p] = kv.AppendKeyList(parts[p], kv.KeyList{Key: key, Values: values})
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				buf.reset()
			}
		})
	}
}

// genRuns serializes nRuns sorted runs the way spill does, each covering an
// overlapping key range so the merge has real cross-run grouping to do.
func genRuns(nRuns, keysPerRun int) [][]byte {
	runs := make([][]byte, nRuns)
	value := kv.AppendVLong(nil, 1)
	for r := range runs {
		var data []byte
		for k := 0; k < keysPerRun; k++ {
			key := fmt.Sprintf("key-%06d", (k*nRuns+r)%(keysPerRun*2))
			data = kv.AppendKeyList(data, kv.KeyList{Key: []byte(key), Values: [][]byte{value, value}})
		}
		runs[r] = sortRun(data)
	}
	return runs
}

// sortRun re-sorts a run's frames by key (genRuns builds them unsorted).
func sortRun(data []byte) []byte {
	var frames []kv.KeyList
	for rest := data; len(rest) > 0; {
		kl, n, err := kv.ReadKeyList(rest)
		if err != nil {
			panic(err)
		}
		frames = append(frames, kl)
		rest = rest[n:]
	}
	sort.Slice(frames, func(i, j int) bool { return kv.Compare(frames[i].Key, frames[j].Key) < 0 })
	out := make([]byte, 0, len(data))
	for _, f := range frames {
		out = kv.AppendKeyList(out, f)
	}
	return out
}

// BenchmarkRecvMerge compares the two grouped drains over identical
// pre-serialized runs: the legacy buffer-everything map + sort + drain
// against the streaming ordered k-way merge.
func BenchmarkRecvMerge(b *testing.B) {
	runs := genRuns(24, 512)
	var total int64
	for _, r := range runs {
		total += int64(len(r))
	}

	b.Run("merged", func(b *testing.B) {
		pool := bufpool.New()
		b.ReportAllocs()
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := shuffle.NewMerger(shuffle.Config{Factor: 10, Ordered: true, Pool: pool})
			for seq, r := range runs {
				// The merger may recycle consumed runs into the pool, so
				// hand it a copy, as the transport would.
				data := pool.Get(len(r))
				copy(data, r)
				m.Add(seq, data)
			}
			keys := 0
			if err := m.Merge(func(kl kv.KeyList) error { keys++; return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			groups := make(map[string][][]byte)
			var order []string
			for _, data := range runs {
				for rest := data; len(rest) > 0; {
					kl, n, err := kv.ReadKeyList(rest)
					if err != nil {
						b.Fatal(err)
					}
					k := string(kl.Key)
					if _, seen := groups[k]; !seen {
						order = append(order, k)
					}
					groups[k] = append(groups[k], kl.Values...)
					rest = rest[n:]
				}
			}
			sort.Strings(order)
			for _, k := range order {
				_ = groups[k]
				delete(groups, k)
			}
		}
	})
}
