package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/metrics"
)

// observedCombiner builds the Job.ObservedCombiner hook for a derived
// combiner: engines that combine outside the MPI-D send path (the hadoop
// engine's node-level stage) bind it to their per-job registry so combiner
// fallbacks are visible as mapred.combiner.fallback in /metrics.prom.
func observedCombiner(r mapred.Reducer) func(*metrics.Registry) core.CombineFunc {
	return func(reg *metrics.Registry) core.CombineFunc {
		return mapred.CombinerFromReducerObserved(r, reg)
	}
}

// This file is the workload suite: every benchmarkable job the repository
// knows, as wire-parameterizable specs. The paper's evaluation — and every
// baseline before this suite existed — is WordCount, whose unique output
// keys hide whole classes of bugs (duplicate-key canonicalization,
// partitioner skew, value-order-sensitive reducers). The suite adds the
// workloads from "Sorting, Searching, and Simulation in the MapReduce
// Framework": a sampled-range-partitioner TeraSort, inverted index, grep,
// a two-table join, and an iterative PageRank, each built so its output is
// byte-identical across the fast core, legacy core and hadoop engines —
// reducers canonicalize value order internally instead of depending on
// arrival order, which no engine guarantees.
//
// Each Spec declares the integer parameters it accepts; the serve registry
// rejects submissions naming any other parameter, so a client typo cannot
// silently run a default-configured job.

// Spec is one named workload: its wire-encodable parameters and a builder
// producing the runnable job.
type Spec struct {
	// Name is the registry key (e.g. "terasort").
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Params lists every parameter name Build accepts. Builders apply
	// defaults for missing parameters; callers validate that no unknown
	// names are passed (see serve.Workloads.Build).
	Params []string
	// Build constructs the job and its input splits from parameters.
	Build func(params map[string]int64) (mapred.Job, []mapred.Split, error)
}

// Suite returns every workload spec in registry order: wordcount, terasort,
// invindex, grep, join, pagerank.
func Suite() []Spec {
	return []Spec{
		{
			Name:        "wordcount",
			Description: "Zipf text word frequency (the paper's §IV micro-benchmark)",
			Params:      []string{"bytes", "split", "reducers", "seed"},
			Build:       WordCount,
		},
		{
			Name:        "terasort",
			Description: "globally sorted records via a sampled range partitioner",
			Params:      []string{"records", "splits", "reducers", "seed", "skew"},
			Build:       TeraSort,
		},
		{
			Name:        "invindex",
			Description: "word -> sorted document-id postings over synthetic documents",
			Params:      []string{"docs", "lines", "split", "reducers", "seed"},
			Build:       InvertedIndex,
		},
		{
			Name:        "grep",
			Description: "distributed grep: matching lines counted by content",
			Params:      []string{"bytes", "split", "reducers", "seed", "needle"},
			Build:       Grep,
		},
		{
			Name:        "join",
			Description: "two-table repartition join (users x orders, skewed order counts)",
			Params:      []string{"users", "orders", "split", "reducers", "seed"},
			Build:       Join,
		},
		{
			Name:        "pagerank",
			Description: "one PageRank round over a synthetic hub-heavy graph",
			Params:      []string{"vertices", "degree", "split", "reducers", "seed"},
			Build:       PageRank,
		},
	}
}

// Param reads an integer parameter with a default.
func Param(params map[string]int64, key string, def int64) int64 {
	if v, ok := params[key]; ok {
		return v
	}
	return def
}

// ---------------------------------------------------------------------------
// WordCount

// WordCount builds the canonical WordCount job over Zipf-distributed
// synthetic text — the same job shape the paper's live engine comparison
// runs. Parameters (all optional):
//
//	bytes     input size in bytes (default 32768)
//	split     split size in bytes (default 8192)
//	reducers  reduce task count (default 2)
//	seed      text generator seed (default 1) — same seed, same input,
//	          same output, which is what makes cross-run digests comparable
func WordCount(params map[string]int64) (mapred.Job, []mapred.Split, error) {
	size := Param(params, "bytes", 32<<10)
	split := Param(params, "split", 8<<10)
	reducers := Param(params, "reducers", 2)
	seed := Param(params, "seed", 1)
	if size <= 0 || split <= 0 || reducers <= 0 {
		return mapred.Job{}, nil, fmt.Errorf("workload: wordcount params out of range (bytes=%d split=%d reducers=%d)", size, split, reducers)
	}

	vocab := NewVocabulary(500, seed)
	text := NewTextGenerator(vocab, 1.15, seed).BytesOfText(int(size))
	splits := mapred.SplitText(text, int(split))

	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		for _, w := range bytes.Fields(line) {
			if err := emit(w, kv.AppendVLong(nil, 1)); err != nil {
				return err
			}
		}
		return nil
	})
	reducer := sumReducer()
	job := mapred.Job{
		Name:             "wordcount",
		Mapper:           mapper,
		Reducer:          reducer,
		Combiner:         mapred.CombinerFromReducer(reducer),
		ObservedCombiner: observedCombiner(reducer),
		NumReducers:      int(reducers),
	}
	return job, splits, nil
}

// sumReducer sums VLong-encoded counts; order-insensitive, so it is safe
// both as a reducer and (via CombinerFromReducer) as a combiner.
func sumReducer() mapred.Reducer {
	return mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		var total int64
		for _, v := range values {
			n, _, err := kv.ReadVLong(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit(key, kv.AppendVLong(nil, total))
	})
}

// ---------------------------------------------------------------------------
// TeraSort

// TeraSort builds the distributed sort: identity map, identity reduce, and
// a range partitioner whose boundaries are sampled from the input, so that
// concatenating the reducers' outputs in reducer order yields a globally
// sorted sequence however the keys are distributed. Parameters:
//
//	records   record count (default 20000; 100 bytes each)
//	splits    input split count (default 8)
//	reducers  reduce task count (default 4)
//	seed      record generator seed (default 1)
//	skew      0 (default) draws uniform random keys; otherwise keys are
//	          Zipf(skew/100) over a bounded universe — skew=150 means
//	          s=1.5, where duplicate keys dominate the output
func TeraSort(params map[string]int64) (mapred.Job, []mapred.Split, error) {
	records := Param(params, "records", 20000)
	nSplits := Param(params, "splits", 8)
	reducers := Param(params, "reducers", 4)
	seed := Param(params, "seed", 1)
	skew := Param(params, "skew", 0)
	if records <= 0 || nSplits <= 0 || reducers <= 0 || skew < 0 {
		return mapred.Job{}, nil, fmt.Errorf("workload: terasort params out of range (records=%d splits=%d reducers=%d skew=%d)", records, nSplits, reducers, skew)
	}

	var recs []SortRecord
	if skew > 0 {
		recs = NewSkewedSortGenerator(seed, float64(skew)/100, int(records)/4+2).Records(int(records))
	} else {
		recs = NewSortGenerator(seed).Records(int(records))
	}
	pairs := make([]kv.Pair, len(recs))
	for i, r := range recs {
		pairs[i] = kv.Pair{Key: r.Key, Value: r.Value}
	}

	// Sample the input for range boundaries, as TeraSort samples before
	// launching: ~512 evenly strided keys are plenty for tens of reducers.
	stride := len(pairs) / 512
	if stride < 1 {
		stride = 1
	}
	var sample [][]byte
	for i := 0; i < len(pairs); i += stride {
		sample = append(sample, pairs[i].Key)
	}
	partitioner := core.RangePartitioner(core.SampleCuts(sample, int(reducers)))

	identityMap := mapred.MapperFunc(func(k, v []byte, emit mapred.Emit) error {
		return emit(k, v)
	})
	// Identity reduce, but with the value list sorted first: engines do not
	// guarantee value arrival order, and a sorted list makes the output of
	// duplicate keys canonical.
	identityReduce := mapred.ReducerFunc(func(k []byte, values [][]byte, emit mapred.Emit) error {
		sorted := append([][]byte(nil), values...)
		sort.Slice(sorted, func(i, j int) bool { return kv.Compare(sorted[i], sorted[j]) < 0 })
		for _, v := range sorted {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	})
	job := mapred.Job{
		Name:        "terasort",
		Mapper:      identityMap,
		Reducer:     identityReduce,
		Partitioner: partitioner,
		NumReducers: int(reducers),
	}
	return job, chunkPairs(pairs, int(nSplits)), nil
}

// chunkPairs slices pairs into n contiguous PairSplits.
func chunkPairs(pairs []kv.Pair, n int) []mapred.Split {
	if n > len(pairs) && len(pairs) > 0 {
		n = len(pairs)
	}
	if n < 1 {
		n = 1
	}
	splits := make([]mapred.Split, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(pairs)/n, (i+1)*len(pairs)/n
		splits = append(splits, mapred.NewPairSplit(i, pairs[lo:hi]))
	}
	return splits
}

// ---------------------------------------------------------------------------
// Inverted index

// InvertedIndex builds word -> posting-list over synthetic documents. Each
// input line is "d<id> w1 w2 ..."; the output maps every word to its
// sorted, deduplicated document-id list. The reducer treats every value as
// a space-separated posting list and unions them, which makes the derived
// combiner sound (combined partial lists re-union losslessly). Parameters:
//
//	docs      document count (default 40)
//	lines     lines per document (default 30)
//	split     split size in bytes (default 4096)
//	reducers  reduce task count (default 2)
//	seed      generator seed (default 1)
func InvertedIndex(params map[string]int64) (mapred.Job, []mapred.Split, error) {
	docs := Param(params, "docs", 40)
	lines := Param(params, "lines", 30)
	split := Param(params, "split", 4<<10)
	reducers := Param(params, "reducers", 2)
	seed := Param(params, "seed", 1)
	if docs <= 0 || lines <= 0 || split <= 0 || reducers <= 0 {
		return mapred.Job{}, nil, fmt.Errorf("workload: invindex params out of range (docs=%d lines=%d split=%d reducers=%d)", docs, lines, split, reducers)
	}

	vocab := NewVocabulary(300, seed)
	var b strings.Builder
	for d := int64(0); d < docs; d++ {
		gen := NewTextGenerator(vocab, 1.2, seed+d)
		gen.WordsPerLine = 8
		for _, line := range gen.Lines(int(lines)) {
			fmt.Fprintf(&b, "d%04d %s\n", d, line)
		}
	}
	splits := mapred.SplitText([]byte(b.String()), int(split))

	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		fields := bytes.Fields(line)
		if len(fields) < 2 {
			return nil
		}
		doc := fields[0]
		for _, w := range fields[1:] {
			if err := emit(w, doc); err != nil {
				return err
			}
		}
		return nil
	})
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		set := make(map[string]bool)
		for _, v := range values {
			for _, doc := range strings.Fields(string(v)) {
				set[doc] = true
			}
		}
		postings := make([]string, 0, len(set))
		for doc := range set {
			postings = append(postings, doc)
		}
		sort.Strings(postings)
		return emit(key, []byte(strings.Join(postings, " ")))
	})
	job := mapred.Job{
		Name:             "invindex",
		Mapper:           mapper,
		Reducer:          reducer,
		Combiner:         mapred.CombinerFromReducer(reducer),
		ObservedCombiner: observedCombiner(reducer),
		NumReducers:      int(reducers),
	}
	return job, splits, nil
}

// ---------------------------------------------------------------------------
// Grep

// Grep builds the distributed grep of the MapReduce paper's motivating
// examples: lines containing the needle word are counted by content, so
// the output is (matching line, occurrence count). Parameters:
//
//	bytes     input size in bytes (default 65536)
//	split     split size in bytes (default 8192)
//	reducers  reduce task count (default 2)
//	seed      text generator seed (default 1)
//	needle    vocabulary rank of the searched word (default 3); low ranks
//	          are hot words under Zipf, so matches are plentiful
func Grep(params map[string]int64) (mapred.Job, []mapred.Split, error) {
	size := Param(params, "bytes", 64<<10)
	split := Param(params, "split", 8<<10)
	reducers := Param(params, "reducers", 2)
	seed := Param(params, "seed", 1)
	needle := Param(params, "needle", 3)
	if size <= 0 || split <= 0 || reducers <= 0 || needle < 0 {
		return mapred.Job{}, nil, fmt.Errorf("workload: grep params out of range (bytes=%d split=%d reducers=%d needle=%d)", size, split, reducers, needle)
	}

	vocab := NewVocabulary(500, seed)
	word := []byte(vocab.Word(int(needle) % vocab.Size()))
	text := NewTextGenerator(vocab, 1.15, seed).BytesOfText(int(size))
	splits := mapred.SplitText(text, int(split))

	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		for _, w := range bytes.Fields(line) {
			if bytes.Equal(w, word) {
				return emit(line, kv.AppendVLong(nil, 1))
			}
		}
		return nil
	})
	reducer := sumReducer()
	job := mapred.Job{
		Name:             "grep",
		Mapper:           mapper,
		Reducer:          reducer,
		Combiner:         mapred.CombinerFromReducer(reducer),
		ObservedCombiner: observedCombiner(reducer),
		NumReducers:      int(reducers),
	}
	return job, splits, nil
}

// ---------------------------------------------------------------------------
// Two-table join

// Join builds a repartition join between a users table ("U <uid> <name>")
// and an orders table ("O <uid> <amount>"): the mapper tags each record
// with its table and keys it by uid; the reducer matches each user's
// orders, emitting one (uid, "name\tamount") pair per order — duplicate
// output keys for every user with more than one order, sorted by amount so
// the per-key output is canonical. Users without orders emit
// (uid, "name\t-"). Order counts per user are Zipf-skewed, as real order
// tables are. Parameters:
//
//	users     user count (default 150)
//	orders    order count (default 600)
//	split     split size in bytes (default 4096)
//	reducers  reduce task count (default 2)
//	seed      generator seed (default 1)
func Join(params map[string]int64) (mapred.Job, []mapred.Split, error) {
	users := Param(params, "users", 150)
	orders := Param(params, "orders", 600)
	split := Param(params, "split", 4<<10)
	reducers := Param(params, "reducers", 2)
	seed := Param(params, "seed", 1)
	if users <= 0 || orders < 0 || split <= 0 || reducers <= 0 {
		return mapred.Job{}, nil, fmt.Errorf("workload: join params out of range (users=%d orders=%d split=%d reducers=%d)", users, orders, split, reducers)
	}

	vocab := NewVocabulary(int(users), seed)
	var b strings.Builder
	for u := int64(0); u < users; u++ {
		fmt.Fprintf(&b, "U %06d %s\n", u, vocab.Word(int(u)))
	}
	// Order volume per user is Zipf-skewed (s=1.2): a few hot users hold
	// many orders, most hold none or one.
	rng := rand.New(rand.NewSource(seed + 1))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(users-1))
	for o := int64(0); o < orders; o++ {
		fmt.Fprintf(&b, "O %06d %06d\n", zipf.Uint64(), rng.Intn(100000))
	}
	splits := mapred.SplitText([]byte(b.String()), int(split))

	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		fields := bytes.Fields(line)
		if len(fields) != 3 {
			return nil
		}
		switch string(fields[0]) {
		case "U":
			return emit(fields[1], append([]byte("U:"), fields[2]...))
		case "O":
			return emit(fields[1], append([]byte("O:"), fields[2]...))
		}
		return nil
	})
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		var name string
		var amounts []string
		for _, v := range values {
			s := string(v)
			switch {
			case strings.HasPrefix(s, "U:"):
				if name == "" || s[2:] < name {
					name = s[2:] // deterministic pick even under anomalies
				}
			case strings.HasPrefix(s, "O:"):
				amounts = append(amounts, s[2:])
			}
		}
		if name == "" {
			return nil // dangling order, no user row: drop, as inner joins do
		}
		if len(amounts) == 0 {
			return emit(key, []byte(name+"\t-"))
		}
		sort.Strings(amounts)
		for _, a := range amounts {
			if err := emit(key, []byte(name+"\t"+a)); err != nil {
				return err
			}
		}
		return nil
	})
	job := mapred.Job{
		Name:        "join",
		Mapper:      mapper,
		Reducer:     reducer,
		NumReducers: int(reducers),
		// No combiner: the reducer's output shape (joined rows) is not its
		// input shape (tagged records), so combining would corrupt.
	}
	return job, splits, nil
}

// ---------------------------------------------------------------------------
// PageRank

const (
	pagerankDamping = 0.85
	// pagerankFloat is the strconv format for ranks: 'g'/17 round-trips
	// float64 exactly, so chained rounds lose no precision on the wire.
	pagerankFloatPrec = 17
)

// PageRank builds ONE PageRank round over a synthetic hub-heavy graph with
// uniform initial ranks. Iterative runs chain rounds without re-reading
// input: feed a round's output through PageRankNextSplits and run
// PageRankJob again (the workloadbench harness does exactly this). The
// registry entry runs a single round, which is what a digest needs to be
// comparable. Parameters:
//
//	vertices  vertex count (default 300)
//	degree    average out-degree (default 6)
//	split     split size in bytes (default 4096)
//	reducers  reduce task count (default 2)
//	seed      graph seed (default 1)
func PageRank(params map[string]int64) (mapred.Job, []mapred.Split, error) {
	vertices := Param(params, "vertices", 300)
	degree := Param(params, "degree", 6)
	split := Param(params, "split", 4<<10)
	reducers := Param(params, "reducers", 2)
	seed := Param(params, "seed", 1)
	if vertices <= 1 || degree <= 0 || split <= 0 || reducers <= 0 {
		return mapred.Job{}, nil, fmt.Errorf("workload: pagerank params out of range (vertices=%d degree=%d split=%d reducers=%d)", vertices, degree, split, reducers)
	}
	splits := PageRankInitialSplits(int(vertices), int(degree), seed, int(split))
	return PageRankJob(int(vertices), int(reducers)), splits, nil
}

// PageRankInitialSplits generates the round-0 input: one line per vertex,
// "<id> <rank> <neighbour ids...>", uniform ranks, zero-padded ids so key
// order is numeric order.
func PageRankInitialSplits(vertices, degree int, seed int64, splitBytes int) []mapred.Split {
	graph := NewGraph(vertices, degree, seed)
	var b strings.Builder
	rank := strconv.FormatFloat(1/float64(vertices), 'g', pagerankFloatPrec, 64)
	for v, links := range graph {
		fmt.Fprintf(&b, "%06d %s", v, rank)
		for _, u := range links {
			fmt.Fprintf(&b, " %06d", u)
		}
		b.WriteByte('\n')
	}
	return mapred.SplitText([]byte(b.String()), splitBytes)
}

// PageRankNextSplits turns a finished round's output into the next round's
// input — the MPI-D round chaining: the state lines travel in memory from
// reducers to the next round's mappers, never back through the original
// input. Pairs must be the round's canonical output (Result.Pairs()).
func PageRankNextSplits(pairs []kv.Pair, splitBytes int) []mapred.Split {
	var b strings.Builder
	for _, p := range pairs {
		b.Write(p.Value)
		b.WriteByte('\n')
	}
	return mapred.SplitText([]byte(b.String()), splitBytes)
}

// PageRankJob builds the per-round job: map distributes a vertex's rank
// over its outgoing links and re-emits the adjacency under its own key;
// reduce sums contributions in sorted order (float addition is not
// associative, so a canonical order is what keeps three engines
// byte-identical), applies damping, and emits the updated state line.
func PageRankJob(vertices, reducers int) mapred.Job {
	mapper := mapred.MapperFunc(func(_, value []byte, emit mapred.Emit) error {
		fields := strings.Fields(string(value))
		if len(fields) < 2 {
			return nil
		}
		v := fields[0]
		rank, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return err
		}
		links := fields[2:]
		if err := emit([]byte(v), []byte("L:"+strings.Join(links, " "))); err != nil {
			return err
		}
		if len(links) == 0 {
			return nil
		}
		share := rank / float64(len(links))
		contribution := []byte("R:" + strconv.FormatFloat(share, 'g', pagerankFloatPrec, 64))
		for _, u := range links {
			if err := emit([]byte(u), contribution); err != nil {
				return err
			}
		}
		return nil
	})
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		links := ""
		var contribs []string
		for _, val := range values {
			s := string(val)
			switch {
			case strings.HasPrefix(s, "R:"):
				contribs = append(contribs, s[2:])
			case strings.HasPrefix(s, "L:"):
				links = s[2:]
			}
		}
		sort.Strings(contribs)
		var sum float64
		for _, c := range contribs {
			r, err := strconv.ParseFloat(c, 64)
			if err != nil {
				return err
			}
			sum += r
		}
		rank := (1-pagerankDamping)/float64(vertices) + pagerankDamping*sum
		out := string(key) + " " + strconv.FormatFloat(rank, 'g', pagerankFloatPrec, 64)
		if links != "" {
			out += " " + links
		}
		return emit(key, []byte(out))
	})
	return mapred.Job{
		Name:        "pagerank",
		Mapper:      mapper,
		Reducer:     reducer,
		NumReducers: reducers,
		// No combiner: partial contribution sums would change float
		// grouping per engine and break byte identity.
	}
}
