package workload

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
)

// runSpec builds and runs a spec on the in-process MPI-D engine.
func runSpec(t *testing.T, name string, params map[string]int64) *mapred.Result {
	t.Helper()
	var spec *Spec
	for i, s := range Suite() {
		if s.Name == name {
			spec = &Suite()[i]
			break
		}
	}
	if spec == nil {
		t.Fatalf("no spec %q in suite", name)
	}
	job, splits, err := spec.Build(params)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	res, err := mapred.Run(job, splits, 4)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return res
}

func pairsEqual(a, b []kv.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// TestSuiteSpecsDeterministic runs every workload twice and asserts the
// canonical outputs match — the property every equality gate builds on.
func TestSuiteSpecsDeterministic(t *testing.T) {
	for _, spec := range Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			a := runSpec(t, spec.Name, nil).Pairs()
			b := runSpec(t, spec.Name, nil).Pairs()
			if len(a) == 0 {
				t.Fatalf("%s produced no output", spec.Name)
			}
			if !pairsEqual(a, b) {
				t.Fatalf("%s output differs across identical runs", spec.Name)
			}
		})
	}
}

func TestTeraSortGloballySorted(t *testing.T) {
	for name, params := range map[string]map[string]int64{
		"uniform": {"records": 5000},
		"skewed":  {"records": 5000, "skew": 150},
	} {
		t.Run(name, func(t *testing.T) {
			res := runSpec(t, "terasort", params)
			var out []kv.Pair
			for _, rp := range res.ByReducer {
				out = append(out, rp...)
			}
			if len(out) != 5000 {
				t.Fatalf("%d records out, want 5000", len(out))
			}
			dups := 0
			for i := 1; i < len(out); i++ {
				c := kv.Compare(out[i-1].Key, out[i].Key)
				if c > 0 {
					t.Fatalf("record %d: key %q after %q breaks global order", i, out[i].Key, out[i-1].Key)
				}
				if c == 0 {
					dups++
				}
			}
			if name == "skewed" && dups < 1000 {
				t.Fatalf("skewed terasort produced only %d duplicate-key adjacencies; the skew is not stressing canonicalization", dups)
			}
		})
	}
}

func TestInvertedIndexPostings(t *testing.T) {
	res := runSpec(t, "invindex", map[string]int64{"docs": 10, "lines": 20})
	pairs := res.Pairs()
	if len(pairs) == 0 {
		t.Fatal("no postings")
	}
	multi := 0
	for _, p := range pairs {
		docs := strings.Fields(string(p.Value))
		if len(docs) > 1 {
			multi++
		}
		for i := range docs {
			if !strings.HasPrefix(docs[i], "d") {
				t.Fatalf("posting %q of %q is not a doc id", docs[i], p.Key)
			}
			if i > 0 && docs[i-1] >= docs[i] {
				t.Fatalf("postings of %q not sorted/deduped: %q", p.Key, p.Value)
			}
		}
	}
	if multi == 0 {
		t.Fatal("no word appears in more than one document; index is trivial")
	}
}

func TestGrepCountsMatchReference(t *testing.T) {
	// Reference: regenerate the same text and count matching lines by hand.
	vocab := NewVocabulary(500, 1)
	word := vocab.Word(3)
	text := NewTextGenerator(vocab, 1.15, 1).BytesOfText(64 << 10)
	want := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimRight(string(text), "\n"), "\n") {
		for _, w := range strings.Fields(line) {
			if w == word {
				want[line]++
				break
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("reference found no matches; needle too cold")
	}
	res := runSpec(t, "grep", nil)
	got := make(map[string]int64)
	for _, p := range res.Pairs() {
		n, _, err := kv.ReadVLong(p.Value)
		if err != nil {
			t.Fatalf("bad count: %v", err)
		}
		got[string(p.Key)] = n
	}
	if len(got) != len(want) {
		t.Fatalf("grep matched %d distinct lines, reference %d", len(got), len(want))
	}
	for line, n := range want {
		if got[line] != n {
			t.Fatalf("line %q counted %d, want %d", line, got[line], n)
		}
	}
}

func TestJoinShape(t *testing.T) {
	res := runSpec(t, "join", nil)
	pairs := res.Pairs()
	dupKeys := false
	for i, p := range pairs {
		parts := strings.SplitN(string(p.Value), "\t", 2)
		if len(parts) != 2 || parts[0] == "" {
			t.Fatalf("joined row %q has no name\tamount shape", p.Value)
		}
		if i > 0 && bytes.Equal(pairs[i-1].Key, p.Key) {
			dupKeys = true
			if kv.Compare(pairs[i-1].Value, p.Value) > 0 {
				t.Fatalf("equal-key rows out of canonical order at %d: %q then %q", i, pairs[i-1].Value, p.Value)
			}
		}
	}
	if !dupKeys {
		t.Fatal("join produced no duplicate output keys; the workload is not exercising canonicalization")
	}
}

// TestPageRankChainedRoundsConverge chains rounds through
// PageRankNextSplits — output feeding input without re-reading the graph —
// and asserts rank mass conservation plus convergence to a fixed point.
func TestPageRankChainedRoundsConverge(t *testing.T) {
	const vertices = 200
	job := PageRankJob(vertices, 2)
	splits := PageRankInitialSplits(vertices, 5, 1, 4<<10)

	ranks := func(pairs []kv.Pair) map[string]float64 {
		out := make(map[string]float64, len(pairs))
		for _, p := range pairs {
			fields := strings.Fields(string(p.Value))
			r, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("bad rank in %q: %v", p.Value, err)
			}
			out[fields[0]] = r
		}
		return out
	}

	var prev map[string]float64
	var delta float64
	for round := 0; round < 15; round++ {
		res, err := mapred.Run(job, splits, 4)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		pairs := res.Pairs()
		if len(pairs) != vertices {
			t.Fatalf("round %d emitted %d vertices, want %d", round, len(pairs), vertices)
		}
		cur := ranks(pairs)
		var mass float64
		for _, r := range cur {
			mass += r
		}
		if math.Abs(mass-1) > 0.02 {
			t.Fatalf("round %d: rank mass %f diverged from 1", round, mass)
		}
		delta = 0
		for v, r := range cur {
			if prev != nil {
				if d := math.Abs(r - prev[v]); d > delta {
					delta = d
				}
			}
		}
		prev = cur
		splits = PageRankNextSplits(pairs, 4<<10)
	}
	if delta > 1e-6 {
		t.Fatalf("not at fixed point after 15 rounds: max per-vertex delta %g", delta)
	}
}
