package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestVocabularyUniqueWords(t *testing.T) {
	v := NewVocabulary(5000, 42)
	if v.Size() != 5000 {
		t.Fatalf("Size = %d", v.Size())
	}
	seen := make(map[string]bool)
	for i := 0; i < v.Size(); i++ {
		w := v.Word(i)
		if w == "" {
			t.Fatalf("empty word at %d", i)
		}
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
}

func TestVocabularyDeterministic(t *testing.T) {
	a, b := NewVocabulary(100, 7), NewVocabulary(100, 7)
	for i := 0; i < 100; i++ {
		if a.Word(i) != b.Word(i) {
			t.Fatalf("vocabularies diverge at %d: %q vs %q", i, a.Word(i), b.Word(i))
		}
	}
	c := NewVocabulary(100, 8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Word(i) == c.Word(i) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical vocabularies")
	}
}

func TestTextGeneratorDeterministic(t *testing.T) {
	v := NewVocabulary(1000, 1)
	g1 := NewTextGenerator(v, 1.1, 99)
	g2 := NewTextGenerator(v, 1.1, 99)
	for i := 0; i < 50; i++ {
		if l1, l2 := g1.Line(), g2.Line(); l1 != l2 {
			t.Fatalf("line %d diverges: %q vs %q", i, l1, l2)
		}
	}
}

func TestTextGeneratorZipfSkew(t *testing.T) {
	// With Zipf skew, the most frequent word should dominate: its count
	// must be several times the median word's count.
	v := NewVocabulary(1000, 1)
	g := NewTextGenerator(v, 1.2, 5)
	counts := make(map[string]int)
	for _, l := range g.Lines(5000) {
		for _, w := range strings.Fields(l) {
			counts[w]++
		}
	}
	maxCount := 0
	total := 0
	for _, c := range counts {
		total += c
		if c > maxCount {
			maxCount = c
		}
	}
	if total != 50000 {
		t.Fatalf("total words = %d, want 50000", total)
	}
	if float64(maxCount) < 0.05*float64(total) {
		t.Errorf("top word has %d/%d occurrences; expected strong skew", maxCount, total)
	}
	if len(counts) < 50 {
		t.Errorf("only %d distinct words; vocabulary collapse", len(counts))
	}
}

func TestBytesOfTextSizeAndShape(t *testing.T) {
	v := NewVocabulary(500, 2)
	g := NewTextGenerator(v, 1.1, 3)
	buf := g.BytesOfText(10000)
	if len(buf) < 10000 || len(buf) > 10000+200 {
		t.Fatalf("BytesOfText length = %d", len(buf))
	}
	if buf[len(buf)-1] != '\n' {
		t.Fatal("text does not end with newline")
	}
	if bytes.Contains(buf, []byte("\n\n")) {
		t.Fatal("empty lines in generated text")
	}
}

func TestWordsPerLineConfigurable(t *testing.T) {
	v := NewVocabulary(100, 2)
	g := NewTextGenerator(v, 1.1, 3)
	g.WordsPerLine = 3
	if n := len(strings.Fields(g.Line())); n != 3 {
		t.Fatalf("line has %d words, want 3", n)
	}
}

func TestZipfParameterClamped(t *testing.T) {
	v := NewVocabulary(100, 2)
	// s <= 1 is invalid for rand.Zipf; the constructor must clamp, not panic.
	g := NewTextGenerator(v, 0.5, 3)
	if g.Line() == "" {
		t.Fatal("clamped generator produced empty line")
	}
}

func TestSortGeneratorGeometry(t *testing.T) {
	g := NewSortGenerator(11)
	r := g.Record()
	if len(r.Key) != 10 || len(r.Value) != 90 {
		t.Fatalf("record geometry %d/%d, want 10/90", len(r.Key), len(r.Value))
	}
	if g.RecordSize() != 100 {
		t.Fatalf("RecordSize = %d", g.RecordSize())
	}
	for _, b := range r.Key {
		if b < ' ' || b > '~' {
			t.Fatalf("non-printable key byte %d", b)
		}
	}
}

func TestSortGeneratorDeterministicAndSpread(t *testing.T) {
	a := NewSortGenerator(20).Records(100)
	b := NewSortGenerator(20).Records(100)
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) {
			t.Fatalf("records diverge at %d", i)
		}
	}
	// Keys should be spread: first bytes should cover a wide range.
	firstBytes := make(map[byte]bool)
	for _, r := range a {
		firstBytes[r.Key[0]] = true
	}
	if len(firstBytes) < 30 {
		t.Errorf("keys poorly spread: %d distinct first bytes", len(firstBytes))
	}
}

func TestProfileReportsPlausibleText(t *testing.T) {
	v := NewVocabulary(2000, 1)
	g := NewTextGenerator(v, 1.1, 9)
	p := g.Profile(200000)
	if p.AvgWordLen < 3 || p.AvgWordLen > 13 {
		t.Errorf("AvgWordLen = %g", p.AvgWordLen)
	}
	// words per byte ~ 1/(avgLen+1)
	approx := 1 / (p.AvgWordLen + 1)
	if p.WordsPerByte < approx*0.8 || p.WordsPerByte > approx*1.2 {
		t.Errorf("WordsPerByte = %g, expected near %g", p.WordsPerByte, approx)
	}
	if p.VocabSize < 100 || p.VocabSize > 2000 {
		t.Errorf("VocabSize = %d", p.VocabSize)
	}
}
