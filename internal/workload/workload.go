// Package workload generates the deterministic synthetic inputs the
// experiments process: Zipf-distributed text for WordCount (the paper's §IV
// micro-benchmark) and GridMix-style sortable records for the JavaSort
// shuffle study (§II.A). The paper's actual 1-150 GB inputs are not
// available; these generators are seeded and reproducible, and their
// statistical shape (vocabulary skew, record geometry) is what the measured
// systems are sensitive to.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vocabulary holds the word list text generation draws from.
type Vocabulary struct {
	words []string
}

// NewVocabulary synthesizes n pseudo-English words deterministically from
// the seed. Words are syllable chains, 3-12 letters, guaranteed unique.
func NewVocabulary(n int, seed int64) *Vocabulary {
	rng := rand.New(rand.NewSource(seed))
	syllables := []string{
		"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
		"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
		"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
		"ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
		"ta", "te", "ti", "to", "tu", "za", "ze", "zi", "zo", "zu",
	}
	seen := make(map[string]bool, n)
	words := make([]string, 0, n)
	for len(words) < n {
		var b strings.Builder
		k := 2 + rng.Intn(4)
		for i := 0; i < k; i++ {
			b.WriteString(syllables[rng.Intn(len(syllables))])
		}
		w := b.String()
		if seen[w] {
			// Disambiguate deterministically rather than rerolling forever.
			w = fmt.Sprintf("%s%d", w, len(words))
		}
		seen[w] = true
		words = append(words, w)
	}
	return &Vocabulary{words: words}
}

// Size returns the vocabulary size.
func (v *Vocabulary) Size() int { return len(v.words) }

// Word returns the i-th word.
func (v *Vocabulary) Word(i int) string { return v.words[i] }

// TextGenerator produces lines of Zipf-distributed words, modelling natural
// text for WordCount. It is deterministic for a given (vocab, seed).
type TextGenerator struct {
	vocab *Vocabulary
	zipf  *rand.Zipf
	rng   *rand.Rand
	// WordsPerLine controls line length (default 10).
	WordsPerLine int
}

// NewTextGenerator creates a generator with Zipf parameter s (typical
// natural-language skew is s ~ 1.1).
func NewTextGenerator(vocab *Vocabulary, s float64, seed int64) *TextGenerator {
	if s <= 1 {
		s = 1.0001 // rand.Zipf requires s > 1
	}
	rng := rand.New(rand.NewSource(seed))
	return &TextGenerator{
		vocab:        vocab,
		zipf:         rand.NewZipf(rng, s, 1, uint64(vocab.Size()-1)),
		rng:          rng,
		WordsPerLine: 10,
	}
}

// Line generates one line of text.
func (g *TextGenerator) Line() string {
	n := g.WordsPerLine
	words := make([]string, n)
	for i := range words {
		words[i] = g.vocab.Word(int(g.zipf.Uint64()))
	}
	return strings.Join(words, " ")
}

// Lines generates n lines.
func (g *TextGenerator) Lines(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.Line()
	}
	return out
}

// BytesOfText generates approximately total bytes of newline-terminated
// text and returns it as one buffer.
func (g *TextGenerator) BytesOfText(total int) []byte {
	var b strings.Builder
	b.Grow(total + 128)
	for b.Len() < total {
		b.WriteString(g.Line())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ---------------------------------------------------------------------------
// GridMix JavaSort records

// SortRecord mirrors the TeraSort/GridMix record geometry: a 10-byte random
// key and a fixed-size filler value; 100 bytes total by default.
type SortRecord struct {
	Key   []byte
	Value []byte
}

// SortGenerator produces deterministic sortable records.
type SortGenerator struct {
	rng       *rand.Rand
	ValueSize int // default 90
}

// NewSortGenerator creates a generator from seed.
func NewSortGenerator(seed int64) *SortGenerator {
	return &SortGenerator{rng: rand.New(rand.NewSource(seed)), ValueSize: 90}
}

// Record generates one record. Keys are uniform-random printable bytes so
// hash and range partitioning both spread them evenly.
func (g *SortGenerator) Record() SortRecord {
	key := make([]byte, 10)
	for i := range key {
		key[i] = byte(' ' + g.rng.Intn(95))
	}
	val := make([]byte, g.ValueSize)
	for i := range val {
		val[i] = byte('A' + g.rng.Intn(26))
	}
	return SortRecord{Key: key, Value: val}
}

// Records generates n records.
func (g *SortGenerator) Records(n int) []SortRecord {
	out := make([]SortRecord, n)
	for i := range out {
		out[i] = g.Record()
	}
	return out
}

// RecordSize returns the byte size of one generated record.
func (g *SortGenerator) RecordSize() int { return 10 + g.ValueSize }

// SkewedSortGenerator produces sortable records whose keys are drawn from a
// Zipf distribution over a bounded key universe — the skewed-key
// configuration the Spark-vs-MPI word count study measures. Unlike
// SortGenerator's uniform random keys, the same key recurs many times
// (under s >= 1.5 the hottest key accounts for a large share of all draws)
// and hot keys cluster at the low end of the key space, which starves naive
// range partitioners and produces the duplicate-key outputs that stress
// output canonicalization.
type SkewedSortGenerator struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	// ValueSize is the filler value length (default 90, as SortGenerator).
	ValueSize int
}

// NewSkewedSortGenerator creates a generator drawing keys Zipf(s) over a
// universe of distinct keys. s must be > 1; smaller universes and larger s
// mean more duplicates.
func NewSkewedSortGenerator(seed int64, s float64, universe int) *SkewedSortGenerator {
	if s <= 1 {
		s = 1.0001
	}
	if universe < 2 {
		universe = 2
	}
	rng := rand.New(rand.NewSource(seed))
	return &SkewedSortGenerator{
		rng:       rng,
		zipf:      rand.NewZipf(rng, s, 1, uint64(universe-1)),
		ValueSize: 90,
	}
}

// Record generates one record. The key renders the Zipf draw zero-padded so
// lexicographic key order matches numeric order.
func (g *SkewedSortGenerator) Record() SortRecord {
	key := []byte(fmt.Sprintf("key-%08d", g.zipf.Uint64()))
	val := make([]byte, g.ValueSize)
	for i := range val {
		val[i] = byte('A' + g.rng.Intn(26))
	}
	return SortRecord{Key: key, Value: val}
}

// Records generates n records.
func (g *SkewedSortGenerator) Records(n int) []SortRecord {
	out := make([]SortRecord, n)
	for i := range out {
		out[i] = g.Record()
	}
	return out
}

// ---------------------------------------------------------------------------
// Graph generation (PageRank)

// NewGraph builds a deterministic directed graph: graph[v] lists v's
// outgoing neighbours. Degrees are spread 1..2*avgDegree so hubs exist, no
// self-loops, no duplicate edges, and every vertex has at least one
// outgoing link (no dangling mass).
func NewGraph(vertices, avgDegree int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	g := make([][]int, vertices)
	for v := range g {
		deg := 1 + rng.Intn(2*avgDegree)
		if deg >= vertices {
			deg = vertices - 1
		}
		seen := make(map[int]bool, deg)
		for len(g[v]) < deg {
			u := rng.Intn(vertices)
			if u == v || seen[u] {
				continue
			}
			seen[u] = true
			g[v] = append(g[v], u)
		}
	}
	return g
}

// ---------------------------------------------------------------------------
// Statistical descriptors used by the simulators. At 150 GB the DES cannot
// materialize records; it works from these aggregate properties instead.

// TextProfile describes WordCount-relevant statistics of generated text
// without materializing it.
type TextProfile struct {
	// AvgWordLen is the mean word length in bytes (excluding separator).
	AvgWordLen float64
	// WordsPerByte is the expected number of words per input byte.
	WordsPerByte float64
	// DistinctPerBlock estimates distinct words seen in a block of the
	// given size; with a Zipf vocabulary this saturates near the
	// vocabulary size for any block over a few MB.
	VocabSize int
}

// Profile measures a generator empirically over sample bytes of text, so
// the simulators use the same distribution the real examples process.
func (g *TextGenerator) Profile(sampleBytes int) TextProfile {
	buf := g.BytesOfText(sampleBytes)
	words := 0
	wordBytes := 0
	distinct := make(map[string]bool)
	for _, line := range strings.Split(string(buf), "\n") {
		for _, w := range strings.Fields(line) {
			words++
			wordBytes += len(w)
			distinct[w] = true
		}
	}
	if words == 0 {
		return TextProfile{VocabSize: g.vocab.Size()}
	}
	return TextProfile{
		AvgWordLen:   float64(wordBytes) / float64(words),
		WordsPerByte: float64(words) / float64(len(buf)),
		VocabSize:    len(distinct),
	}
}
