// Integration tests exercising the whole stack end to end: DFS storage,
// TextInputFormat splits, the MapReduce framework, the MPI-D library, the
// message-passing runtime (both transports), and the experiment drivers.
package mpid_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/dfs"
	"github.com/ict-repro/mpid/internal/experiments"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/mpi"
	"github.com/ict-repro/mpid/internal/netmodel"
	"github.com/ict-repro/mpid/internal/workload"
)

// TestFullPipelineDFSToMPIDToDFS runs the complete Hadoop-shaped flow on
// real components: ingest into the mini-HDFS, kill a datanode, run
// WordCount on the MPI-D runtime over per-block splits, write part files
// back, and verify against a sequential reference.
func TestFullPipelineDFSToMPIDToDFS(t *testing.T) {
	nn, err := dfs.NewCluster(5, dfs.Config{BlockSize: 4 << 10, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	vocab := workload.NewVocabulary(800, 77)
	text := workload.NewTextGenerator(vocab, 1.2, 78).BytesOfText(120 << 10)

	w, err := nn.Create("/in")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(text); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	nn.DataNode(1).Fail() // replication must carry the job

	splits, err := mapred.DFSSplits(nn, "/in")
	if err != nil {
		t.Fatal(err)
	}
	job := mapred.Job{
		Mapper:      benchMapper,
		Reducer:     benchReducer,
		Combiner:    mapred.CombinerFromReducer(benchReducer),
		NumReducers: 3,
	}
	res, err := mapred.Run(job, splits, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Write part files back into the DFS and re-read them.
	for r, pairs := range res.ByReducer {
		out, err := nn.Create(fmt.Sprintf("/out/part-%d", r))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			n, _, err := kv.ReadVLong(p.Value)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(out, "%s\t%d\n", p.Key, n)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Reference counts from the original text.
	want := make(map[string]int64)
	for _, line := range strings.Split(string(text), "\n") {
		for _, word := range strings.Fields(line) {
			want[word]++
		}
	}

	// Parse the part files back.
	got := make(map[string]int64)
	for r := 0; r < 3; r++ {
		f, err := nn.Open(fmt.Sprintf("/out/part-%d", r))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			if line == "" {
				continue
			}
			parts := strings.SplitN(line, "\t", 2)
			var n int64
			fmt.Sscanf(parts[1], "%d", &n)
			got[parts[0]] += n
		}
	}
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for word, n := range want {
		if got[word] != n {
			t.Errorf("count[%q] = %d, want %d", word, got[word], n)
		}
	}
}

// TestMPIDOverTCPTransport runs the real MPI-D library over real sockets:
// the same WordCount flow, but every intermediate byte crosses the kernel.
func TestMPIDOverTCPTransport(t *testing.T) {
	w, err := mpi.NewTCPWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	words := []string{"mpi", "hadoop", "shuffle", "mpi", "jetty", "mpi", "hadoop"}
	results := make(map[string]int64)
	err = mpi.RunOn(w, func(c *mpi.Comm) error {
		d, err := core.Init(core.Config{Comm: c, Reducers: []int{0}})
		if err != nil {
			return err
		}
		if d.IsSender() {
			for _, word := range words {
				if err := d.Send([]byte(word), kv.AppendVLong(nil, 1)); err != nil {
					return err
				}
			}
			return d.Finalize()
		}
		for {
			key, values, err := d.Recv()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			var total int64
			for _, v := range values {
				n, _, err := kv.ReadVLong(v)
				if err != nil {
					return err
				}
				total += n
			}
			results[string(key)] = total
		}
		return d.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 sender ranks x the word list.
	if results["mpi"] != 9 || results["hadoop"] != 6 || results["shuffle"] != 3 {
		t.Fatalf("results = %v", results)
	}
}

// TestReportPipelineCoherence cross-checks the experiment drivers against
// each other: the models driving Figure 2 must be the same ones whose
// bandwidth shape Figure 3 reports.
func TestReportPipelineCoherence(t *testing.T) {
	rows2, err := experiments.Figure2(experiments.Large, experiments.Model)
	if err != nil {
		t.Fatal(err)
	}
	rows3, err := experiments.Figure3(experiments.Model)
	if err != nil {
		t.Fatal(err)
	}
	// The 64 MB single-message latency must be consistent with the 64 MB
	// packet bandwidth: bandwidth ~ size/latency within a small factor.
	last2 := rows2[len(rows2)-1]
	if last2.Size != 64*netmodel.MB {
		t.Fatalf("unexpected last size %d", last2.Size)
	}
	var bw64 float64
	for _, r := range rows3 {
		if r.Packet == 64*netmodel.MB {
			bw64 = r.MPI
		}
	}
	implied := float64(64*netmodel.MB) / last2.MPI.Seconds()
	if bw64 < implied*0.8 || bw64 > implied*1.3 {
		t.Errorf("figure 2/3 inconsistent at 64MB: bw %g vs implied %g", bw64, implied)
	}
}

// TestWorkloadFeedsAllConsumers makes sure one generator seeds both the
// real examples and the simulators identically (determinism across the
// repo).
func TestWorkloadFeedsAllConsumers(t *testing.T) {
	v1 := workload.NewVocabulary(100, 42)
	v2 := workload.NewVocabulary(100, 42)
	a := workload.NewTextGenerator(v1, 1.1, 1).BytesOfText(10_000)
	b := workload.NewTextGenerator(v2, 1.1, 1).BytesOfText(10_000)
	if !bytes.Equal(a, b) {
		t.Fatal("generator not reproducible across instances")
	}
}
