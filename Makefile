# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench report examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Full paper reproduction (150 GB Table I sweep, 100 GB Figure 6 sweep).
report:
	go run ./cmd/mpid-report

examples:
	go run ./examples/quickstart
	go run ./examples/distributedsort
	go run ./examples/invertedindex
	go run ./examples/latency
	go run ./examples/dfsjob
	go run ./examples/pagerank

clean:
	go clean ./...
