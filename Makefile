# Convenience targets; everything is plain `go` underneath.

.PHONY: all check build vet test race chaos bench report examples clean

all: build vet test

# check is the pre-merge gate: build, vet, the full suite, and the race
# detector over the concurrent fault-tolerance paths. The chaos tests run
# inside `test`/`race` with fixed injector seeds, so the gate is
# deterministic.
check: build vet test race

# Just the chaos suite (fault injection against the live Hadoop engine).
chaos:
	go test ./internal/hadoop/ -run TestChaos -v

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Full paper reproduction (150 GB Table I sweep, 100 GB Figure 6 sweep).
report:
	go run ./cmd/mpid-report

examples:
	go run ./examples/quickstart
	go run ./examples/distributedsort
	go run ./examples/invertedindex
	go run ./examples/latency
	go run ./examples/dfsjob
	go run ./examples/pagerank

clean:
	go clean ./...
