# Convenience targets; everything is plain `go` underneath.

.PHONY: all check build vet test race chaos serve-chaos bench bench-smoke bench-check docs-lint trace-demo report examples clean

all: build vet test

# check is the pre-merge gate: build, vet, the full suite, and the race
# detector over the concurrent fault-tolerance paths. The chaos tests run
# inside `test`/`race` with fixed injector seeds, so the gate is
# deterministic.
check: build vet test race

# Just the chaos suite (fault injection against the live Hadoop engine).
chaos:
	go test ./internal/hadoop/ -run TestChaos -v

# The job-service chaos suite under the race detector: probe-detected
# tracker kill recovering byte-identical, and probe flapping causing no
# spurious re-execution.
serve-chaos:
	go test -race ./internal/serve/ -run TestChaos -v

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Full benchmark run: every Go benchmark, then the A/B harnesses writing
# their JSON baselines (the files EXPERIMENTS.md quotes).
bench:
	go test -bench=. -benchmem ./...
	go run ./cmd/mpid-bench -o BENCH_shuffle.json
	go run ./cmd/mpid-bench -suite mpid -o BENCH_mpid.json
	go run ./cmd/mpid-bench -suite serve -o BENCH_serve.json
	go run ./cmd/mpid-bench -suite workloads -o BENCH_workloads.json
	go run ./cmd/mpid-bench -suite shufflebytes -o BENCH_shufflebytes.json
	go run ./cmd/mpid-bench -suite transport -o BENCH_transport.json

# One iteration of every benchmark — a CI smoke test that the bench code
# still compiles and runs, without the timing noise of a real bench run —
# plus seconds-scale A/B runs producing the BENCH_shuffle.json,
# BENCH_mpid.json, BENCH_serve.json, BENCH_workloads.json,
# BENCH_shufflebytes.json and BENCH_transport.json CI artifacts.
# Regression gate: re-run each suite's smoke config and compare the
# scale-free headline ratios (speedups, fairness) against the committed
# BENCH_*.json baselines within a wide tolerance. Non-fatal in CI — a
# smoke run on shared hardware reports drift, it doesn't block merges.
bench-check:
	go run ./cmd/mpid-bench -check

bench-smoke:
	go test -bench=. -benchtime=1x ./...
	go run ./cmd/mpid-bench -smoke -o BENCH_shuffle.json
	go run ./cmd/mpid-bench -suite mpid -smoke -o BENCH_mpid.json
	go run ./cmd/mpid-bench -suite serve -smoke -o BENCH_serve.json
	go run ./cmd/mpid-bench -suite workloads -smoke -o BENCH_workloads.json
	go run ./cmd/mpid-bench -suite shufflebytes -smoke -o BENCH_shufflebytes.json
	go run ./cmd/mpid-bench -suite transport -smoke -o BENCH_transport.json

# Documentation lint: every internal package must carry a package doc
# comment, and every local markdown link in the top-level docs must
# resolve. Backed by docs_test.go so `go test ./...` enforces it too.
docs-lint:
	go test -run 'TestPackageDocs|TestCommandDocs|TestMarkdownLinks|TestDocSections' .

# End-to-end tracing demo: run a WordCount over this Makefile's README on
# the live hadoop engine with span collection on, print the ASCII
# timeline and final metrics, then validate that the exported JSON will
# load in chrome://tracing.
trace-demo:
	go run ./cmd/mpid-job -job wordcount -input README.md -engine hadoop \
		-block 4 -mappers 2 -trace trace-demo.json -metrics -top 5
	go run ./cmd/mpid-trace trace-demo.json

# Full paper reproduction (150 GB Table I sweep, 100 GB Figure 6 sweep).
report:
	go run ./cmd/mpid-report

examples:
	go run ./examples/quickstart
	go run ./examples/distributedsort
	go run ./examples/invertedindex
	go run ./examples/latency
	go run ./examples/dfsjob
	go run ./examples/pagerank

clean:
	go clean ./...
	rm -f trace-demo.json
