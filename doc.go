// Package mpid is a from-scratch Go reproduction of "Can MPI Benefit
// Hadoop and MapReduce Applications?" (Lu, Wang, Zha, Xu — ICPP 2011): the
// MPI-D key-value extension to MPI, the substrates it is measured against
// (Hadoop RPC, HTTP-over-Jetty, a mini-HDFS), a MapReduce framework over
// MPI-D, and a calibrated discrete-event simulation stack that regenerates
// every table and figure of the paper's evaluation.
//
// The repository holds two real execution engines that run the same
// mapred.Job:
//
//   - the MPI-D path (internal/mpi → internal/core → internal/mapred):
//     the paper's proposal, runnable — goroutine ranks over in-process or
//     TCP transports, MPI_D_Send/Recv with hash-table buffering, local
//     combining, hash-mod partitioning and realignment into contiguous
//     buffers;
//   - the Hadoop path (internal/hadooprpc + internal/jetty + internal/dfs
//     → internal/hadoop): a miniature but real Hadoop 0.20 — jobtracker
//     heartbeat scheduling, slot-bounded tasktrackers, HTTP shuffle with a
//     pipelined k-way merge engine (internal/shuffle) that overlaps
//     merging and combining with the copy phase.
//
// Around them sit a shared substrate (internal/kv encodings,
// internal/workload generators, and the nil-safe observability trio
// internal/metrics, internal/trace, internal/faults with internal/admin
// as the live endpoint), a deterministic simulation stack (internal/des,
// internal/cluster, internal/netmodel, internal/hadoopsim,
// internal/mpidsim) for the cluster-scale experiments that cannot run on
// one machine, and a harness (internal/experiments, internal/stats,
// bench_test.go, cmd/*) that prints measured values next to the paper's.
//
// Start with README.md for the library tour, ARCHITECTURE.md for the
// package-by-package map and data-flow diagrams, DESIGN.md for the system
// inventory and substitutions, and EXPERIMENTS.md for paper-vs-measured
// results. Runnable entry points are under cmd/ and examples/; the
// fault-tolerance chaos suite runs with `make chaos`, the shuffle-engine
// A/B with `make bench` (committed baseline: BENCH_shuffle.json).
package mpid
