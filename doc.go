// Package mpid is a from-scratch Go reproduction of "Can MPI Benefit
// Hadoop and MapReduce Applications?" (Lu, Wang, Zha, Xu — ICPP 2011): the
// MPI-D key-value extension to MPI, the substrates it is measured against
// (Hadoop RPC, HTTP-over-Jetty, a mini-HDFS), a MapReduce framework over
// MPI-D, and a calibrated discrete-event simulation stack that regenerates
// every table and figure of the paper's evaluation.
//
// Start with README.md for the library tour, DESIGN.md for the system
// inventory and substitutions, and EXPERIMENTS.md for paper-vs-measured
// results. The implementation lives under internal/ (one package per
// subsystem); runnable entry points are under cmd/ and examples/.
package mpid
