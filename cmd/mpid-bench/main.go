// Command mpid-bench runs the reduce-side shuffle A/B benchmark — the
// legacy buffer-then-sort engine against the pipelined run/merge engine
// (internal/shuffle) — and writes the result as BENCH_shuffle.json, the
// committed baseline referenced by EXPERIMENTS.md.
//
//	mpid-bench -o BENCH_shuffle.json        full baseline configuration
//	mpid-bench -smoke -o /tmp/bench.json    seconds-scale CI smoke run
//
// Flags override individual workload knobs (-maps, -reducers, -keys,
// -vocab, -copiers, -factor, -reps, -seed). The tool validates that both
// engines produce byte-identical output before timing anything, prints
// the A/B table to stdout, and exits non-zero if the run fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ict-repro/mpid/internal/experiments"
)

func main() {
	out := flag.String("o", "", "write the result JSON to this file (e.g. BENCH_shuffle.json)")
	smoke := flag.Bool("smoke", false, "use the seconds-scale smoke configuration")
	maps := flag.Int("maps", 0, "override: map segments per reducer")
	reducers := flag.Int("reducers", 0, "override: concurrent reducers")
	keys := flag.Int("keys", 0, "override: distinct keys per segment")
	vocab := flag.Int("vocab", 0, "override: distinct-key universe per reducer")
	copiers := flag.Int("copiers", 0, "override: parallel feeders per reducer")
	factor := flag.Int("factor", 0, "override: merge fan-in (io.sort.factor)")
	reps := flag.Int("reps", 0, "override: repetitions per engine (best kept)")
	seed := flag.Int64("seed", 0, "override: workload seed")
	flag.Parse()

	cfg := experiments.DefaultShuffleBench()
	if *smoke {
		cfg = experiments.SmokeShuffleBench()
	}
	if *maps > 0 {
		cfg.Maps = *maps
	}
	if *reducers > 0 {
		cfg.Reducers = *reducers
	}
	if *keys > 0 {
		cfg.KeysPerMap = *keys
	}
	if *vocab > 0 {
		cfg.Vocab = *vocab
	}
	if *copiers > 0 {
		cfg.Copiers = *copiers
	}
	if *factor > 0 {
		cfg.MergeFactor = *factor
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	res, err := experiments.RunShuffleBench(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpid-bench: %v\n", err)
		os.Exit(1)
	}
	res.Timestamp = time.Now().UTC().Format(time.RFC3339)
	fmt.Print(experiments.RenderShuffleBench(res))

	if *out != "" {
		body, err := experiments.MarshalShuffleBench(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpid-bench: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(body, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mpid-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
