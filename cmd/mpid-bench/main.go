// Command mpid-bench runs the committed A/B baselines:
//
//   - suite "shuffle": the reduce-side shuffle engine benchmark — the
//     legacy buffer-then-sort engine against the pipelined run/merge
//     engine (internal/shuffle) — written as BENCH_shuffle.json.
//
//   - suite "mpid": the MPI-D core benchmark — the same live WordCount
//     through the optimized core (arena send buffer, pooled transport,
//     streaming receive merge), the legacy core (LegacySend+LegacyGroup)
//     and the real mini-Hadoop engine — written as BENCH_mpid.json.
//
//   - suite "serve": the job-service soak — a swarm of concurrent tenant
//     clients submitting WordCount jobs through mpid-serve's RPC
//     front-end, reporting p50/p99 job latency, backpressure counts and
//     the cross-tenant fairness ratio — written as BENCH_serve.json.
//
//   - suite "workloads": the full workload suite — WordCount, TeraSort
//     (uniform and Zipf-skewed keys), inverted index, grep, two-table
//     join, chained multi-round PageRank — each run on the fast MPI-D
//     core, legacy core and mini-Hadoop engine, gated on byte-identical
//     output before timing, reporting per-workload p50 times and shuffle
//     bytes — written as BENCH_workloads.json.
//
//   - suite "shufflebytes": the shuffle-byte-reduction benchmark —
//     WordCount and the inverted index under the three byte-reduction
//     mechanisms (the hadoop engine's per-tracker NodeCombine stage, the
//     MPI-D shared NodeArena, and the coded-shuffle prototype at
//     replication r=1..3), each gated on byte-identical output and
//     reporting shipped bytes, the lower-is-better bytes ratio against
//     its in-family baseline, and p50 times — written as
//     BENCH_shufflebytes.json.
//
//   - suite "transport": the transport raw-speed sweep — the in-process
//     chan baseline, the shared-memory-style ring, legacy-framed TCP and
//     vectored (writev) TCP, each gated on byte-identical WordCount
//     output first, then swept across message sizes for one-way latency
//     percentiles, streaming bandwidth and allocations per round trip —
//     written as BENCH_transport.json.
//
//     mpid-bench -o BENCH_shuffle.json                        full shuffle baseline
//     mpid-bench -suite mpid -o BENCH_mpid.json               full MPI-D core baseline
//     mpid-bench -suite serve -o BENCH_serve.json             full job-service soak
//     mpid-bench -suite workloads -o BENCH_workloads.json     full workload suite
//     mpid-bench -suite shufflebytes -o BENCH_shufflebytes.json  full shuffle-byte baseline
//     mpid-bench -suite transport -o BENCH_transport.json     full transport sweep
//     mpid-bench -suite workloads -smoke -o /tmp/bench.json   seconds-scale CI smoke run
//     mpid-bench -check                                       regression gate vs committed baselines
//
// -check re-runs every suite's smoke configuration and compares the
// scale-free headline ratios (speedups, fairness ratio) against the
// committed BENCH_*.json files in -dir, failing if any drifts beyond
// -tolerance (default 50% — smoke-scale runs on shared CI hardware are a
// smoke detector for "the optimization stopped working", not a precision
// benchmark). Suites without a committed baseline are skipped.
//
// Flags override individual workload knobs (shuffle: -maps, -reducers,
// -keys, -vocab, -copiers, -factor; mpid: -size, -reducers, -vocab;
// serve: -tenants, -jobs, -slots, -queue, -size, -reducers; workloads:
// -mappers, -rounds; shufflebytes: -mappers; transport: -reps, -seed;
// common: -reps, -seed). Each suite validates output
// equality before timing anything, prints its summary table to stdout,
// and exits non-zero if the run fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ict-repro/mpid/internal/experiments"
)

func main() {
	suite := flag.String("suite", "shuffle", "benchmark suite: shuffle | mpid | serve | workloads | shufflebytes | transport")
	out := flag.String("o", "", "write the result JSON to this file (e.g. BENCH_shuffle.json)")
	smoke := flag.Bool("smoke", false, "use the seconds-scale smoke configuration")
	maps := flag.Int("maps", 0, "shuffle: map segments per reducer")
	reducers := flag.Int("reducers", 0, "override: concurrent reducers")
	keys := flag.Int("keys", 0, "shuffle: distinct keys per segment")
	vocab := flag.Int("vocab", 0, "override: distinct-key universe")
	copiers := flag.Int("copiers", 0, "shuffle: parallel feeders per reducer")
	factor := flag.Int("factor", 0, "shuffle: merge fan-in (io.sort.factor)")
	size := flag.Int64("size", 0, "mpid/serve: input size in bytes")
	tenants := flag.Int("tenants", 0, "serve: submitting tenants")
	jobs := flag.Int("jobs", 0, "serve: jobs per tenant")
	slots := flag.Int("slots", 0, "serve: concurrent-job slots")
	queue := flag.Int("queue", 0, "serve: admission queue depth")
	reps := flag.Int("reps", 0, "override: repetitions per engine (best kept)")
	seed := flag.Int64("seed", 0, "override: workload seed")
	mappers := flag.Int("mappers", 0, "workloads: mapper rank / tracker count")
	rounds := flag.Int("rounds", 0, "workloads: chained PageRank rounds")
	check := flag.Bool("check", false, "regression gate: re-run every suite's smoke config and compare against committed BENCH_*.json baselines")
	tolerance := flag.Float64("tolerance", experiments.DefaultBenchTolerance, "check: relative slack per metric (0.5 = 50%)")
	dir := flag.String("dir", ".", "check: directory holding the BENCH_*.json baselines")
	flag.Parse()

	if *check {
		res, err := experiments.RunBenchCheck(*dir, *tolerance)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.RenderBenchCheck(res))
		if !res.OK {
			os.Exit(1)
		}
		return
	}

	switch *suite {
	case "shuffle":
		cfg := experiments.DefaultShuffleBench()
		if *smoke {
			cfg = experiments.SmokeShuffleBench()
		}
		if *maps > 0 {
			cfg.Maps = *maps
		}
		if *reducers > 0 {
			cfg.Reducers = *reducers
		}
		if *keys > 0 {
			cfg.KeysPerMap = *keys
		}
		if *vocab > 0 {
			cfg.Vocab = *vocab
		}
		if *copiers > 0 {
			cfg.Copiers = *copiers
		}
		if *factor > 0 {
			cfg.MergeFactor = *factor
		}
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		res, err := experiments.RunShuffleBench(cfg)
		if err != nil {
			fail(err)
		}
		res.Timestamp = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.RenderShuffleBench(res))
		write(*out, func() ([]byte, error) { return experiments.MarshalShuffleBench(res) })

	case "mpid":
		cfg := experiments.DefaultMPIDBench()
		if *smoke {
			cfg = experiments.SmokeMPIDBench()
		}
		if *size > 0 {
			cfg.SizeBytes = *size
		}
		if *reducers > 0 {
			cfg.Reducers = *reducers
		}
		if *vocab > 0 {
			cfg.Vocab = *vocab
		}
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		res, err := experiments.RunMPIDBench(cfg)
		if err != nil {
			fail(err)
		}
		res.Timestamp = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.RenderMPIDBench(res))
		write(*out, func() ([]byte, error) { return experiments.MarshalMPIDBench(res) })

	case "serve":
		cfg := experiments.DefaultServeBench()
		if *smoke {
			cfg = experiments.SmokeServeBench()
		}
		if *tenants > 0 {
			cfg.Tenants = *tenants
		}
		if *jobs > 0 {
			cfg.JobsPerTenant = *jobs
		}
		if *slots > 0 {
			cfg.Slots = *slots
		}
		if *queue > 0 {
			cfg.QueueDepth = *queue
		}
		if *size > 0 {
			cfg.JobBytes = *size
		}
		if *reducers > 0 {
			cfg.Reducers = int64(*reducers)
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		res, err := experiments.RunServeBench(cfg)
		if err != nil {
			fail(err)
		}
		res.Timestamp = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.RenderServeBench(res))
		write(*out, func() ([]byte, error) { return experiments.MarshalServeBench(res) })

	case "workloads":
		cfg := experiments.DefaultWorkloadBench()
		if *smoke {
			cfg = experiments.SmokeWorkloadBench()
		}
		if *mappers > 0 {
			cfg.Mappers = *mappers
		}
		if *rounds > 0 {
			cfg.PageRankRounds = *rounds
		}
		if *reps > 0 {
			cfg.Reps = *reps
		}
		res, err := experiments.RunWorkloadBench(cfg)
		if err != nil {
			fail(err)
		}
		res.Timestamp = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.RenderWorkloadBench(res))
		write(*out, func() ([]byte, error) { return experiments.MarshalWorkloadBench(res) })

	case "shufflebytes":
		cfg := experiments.DefaultShuffleBytesBench()
		if *smoke {
			cfg = experiments.SmokeShuffleBytesBench()
		}
		if *mappers > 0 {
			cfg.Mappers = *mappers
		}
		if *reps > 0 {
			cfg.Reps = *reps
		}
		res, err := experiments.RunShuffleBytesBench(cfg)
		if err != nil {
			fail(err)
		}
		res.Timestamp = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.RenderShuffleBytesBench(res))
		write(*out, func() ([]byte, error) { return experiments.MarshalShuffleBytesBench(res) })

	case "transport":
		cfg := experiments.DefaultTransportBench()
		if *smoke {
			cfg = experiments.SmokeTransportBench()
		}
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		res, err := experiments.RunTransportBench(cfg)
		if err != nil {
			fail(err)
		}
		res.Timestamp = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.RenderTransportBench(res))
		write(*out, func() ([]byte, error) { return experiments.MarshalTransportBench(res) })

	default:
		fail(fmt.Errorf("unknown suite %q (want shuffle, mpid, serve, workloads, shufflebytes or transport)", *suite))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mpid-bench: %v\n", err)
	os.Exit(1)
}

func write(path string, marshal func() ([]byte, error)) {
	if path == "" {
		return
	}
	body, err := marshal()
	if err != nil {
		fail(fmt.Errorf("marshal: %w", err))
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)
}
