// Command mpid-job runs a MapReduce job over a local text file on either
// execution engine in this repository:
//
//	mpid-job -job wordcount -input corpus.txt            # MPI-D engine
//	mpid-job -job wordcount -input corpus.txt -engine hadoop
//	mpid-job -job grep -pattern 'mpi.*d' -input corpus.txt
//	mpid-job -job sort -input records.txt
//
// Jobs:
//
//	wordcount  (word, count) over whitespace-separated words
//	grep       lines matching -pattern, keyed by byte offset
//	sort       lines sorted lexicographically (range-partitioned)
//
// Output goes to stdout as key<TAB>value lines, like Hadoop's text output.
//
// On the hadoop engine, observability flags are available: -metrics
// prints the jobtracker's final counter snapshot, -trace FILE writes a
// Chrome trace-event JSON of every task attempt (and prints an ASCII
// timeline), -events prints the job's flight-recorder table (attempt
// lifecycle, spills, retries, faults) to stderr, and -admin ADDR serves
// /metrics, /metrics.prom, /trace.json, /timeline, /events and
// /debug/pprof/ live for the job's duration.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/obs"
)

func main() {
	jobName := flag.String("job", "wordcount", "job: wordcount, grep or sort")
	input := flag.String("input", "", "input text file (required)")
	engine := flag.String("engine", "mpid", "execution engine: mpid or hadoop")
	pattern := flag.String("pattern", "", "regexp for -job grep")
	reducers := flag.Int("reducers", 2, "reduce task count")
	mappers := flag.Int("mappers", runtime.GOMAXPROCS(0), "mapper count (mpid engine) / tasktrackers (hadoop engine)")
	blockKB := flag.Int("block", 256, "split size in KB")
	top := flag.Int("top", 0, "print only the first N output pairs (0 = all)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the job to this file (hadoop engine)")
	adminAddr := flag.String("admin", "", "serve /metrics, /trace.json, /timeline and pprof on this address for the job's duration (hadoop engine; use 127.0.0.1:0 for an ephemeral port)")
	showMetrics := flag.Bool("metrics", false, "print the job's final metrics snapshot to stderr (hadoop engine)")
	showEvents := flag.Bool("events", false, "print the job's flight-recorder events to stderr (hadoop engine)")
	flag.Parse()

	if *input == "" {
		fatal(fmt.Errorf("-input is required"))
	}
	if *engine != "hadoop" && (*traceFile != "" || *adminAddr != "" || *showMetrics || *showEvents) {
		fatal(fmt.Errorf("-trace, -admin, -metrics and -events need -engine hadoop (the mpid engine has no jobtracker to observe)"))
	}
	text, err := os.ReadFile(*input)
	if err != nil {
		fatal(err)
	}

	job, err := buildJob(*jobName, *pattern, *reducers)
	if err != nil {
		fatal(err)
	}
	splits := mapred.SplitText(text, *blockKB<<10)

	var result *mapred.Result
	switch *engine {
	case "mpid":
		result, err = mapred.Run(job, splits, *mappers)
	case "hadoop":
		var rec *obs.Recorder
		if *showEvents {
			rec = obs.NewRecorder(0)
		}
		var rep *hadoop.JobReport
		result, rep, err = hadoop.RunWithReport(job, splits, hadoop.Config{
			NumTrackers: *mappers,
			AdminAddr:   *adminAddr,
			Events:      rec,
		})
		if err == nil {
			if *showMetrics {
				fmt.Fprint(os.Stderr, rep.Metrics.String())
			}
			if *showEvents {
				fmt.Fprint(os.Stderr, obs.RenderEvents(rec.Events()))
			}
			if *traceFile != "" {
				if werr := writeTrace(*traceFile, rep); werr != nil {
					fatal(werr)
				}
			}
		}
	default:
		err = fmt.Errorf("unknown engine %q (want mpid or hadoop)", *engine)
	}
	if err != nil {
		fatal(err)
	}

	pairs := result.Pairs()
	fmt.Fprintf(os.Stderr, "mpid-job: %s on %s engine: %d splits, %d output pairs\n",
		*jobName, *engine, len(splits), len(pairs))
	for i, p := range pairs {
		if *top > 0 && i == *top {
			break
		}
		if *jobName == "wordcount" {
			n, _, err := kv.ReadVLong(p.Value)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\t%d\n", p.Key, n)
			continue
		}
		fmt.Printf("%s\t%s\n", p.Key, p.Value)
	}
}

// buildJob assembles the requested job.
func buildJob(name, pattern string, reducers int) (mapred.Job, error) {
	switch name {
	case "wordcount":
		reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
			var total int64
			for _, v := range values {
				n, _, err := kv.ReadVLong(v)
				if err != nil {
					return err
				}
				total += n
			}
			return emit(key, kv.AppendVLong(nil, total))
		})
		return mapred.Job{
			Name: name,
			Mapper: mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
				for _, w := range bytes.Fields(line) {
					if err := emit(w, kv.AppendVLong(nil, 1)); err != nil {
						return err
					}
				}
				return nil
			}),
			Reducer:     reducer,
			Combiner:    mapred.CombinerFromReducer(reducer),
			NumReducers: reducers,
		}, nil

	case "grep":
		if pattern == "" {
			return mapred.Job{}, fmt.Errorf("-job grep needs -pattern")
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return mapred.Job{}, fmt.Errorf("bad -pattern: %w", err)
		}
		return mapred.Job{
			Name: name,
			Mapper: mapred.MapperFunc(func(offset, line []byte, emit mapred.Emit) error {
				if re.Match(line) {
					off, _, err := kv.ReadVLong(offset)
					if err != nil {
						return err
					}
					return emit([]byte(fmt.Sprintf("%012d", off)), line)
				}
				return nil
			}),
			Reducer: mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
				for _, v := range values {
					if err := emit(key, v); err != nil {
						return err
					}
				}
				return nil
			}),
			NumReducers: reducers,
		}, nil

	case "sort":
		identity := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
			for _, v := range values {
				if err := emit(key, v); err != nil {
					return err
				}
			}
			return nil
		})
		return mapred.Job{
			Name: name,
			Mapper: mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
				return emit(line, nil)
			}),
			Reducer:     identity,
			Partitioner: core.FirstByteRangePartitioner,
			NumReducers: reducers,
		}, nil
	}
	return mapred.Job{}, fmt.Errorf("unknown job %q (want wordcount, grep or sort)", name)
}

// writeTrace exports the job's span trace as Chrome trace-event JSON
// (load it at chrome://tracing or ui.perfetto.dev) and prints the ASCII
// timeline of the same spans to stderr.
func writeTrace(path string, rep *hadoop.JobReport) error {
	data, err := rep.ChromeTrace()
	if err != nil {
		return fmt.Errorf("trace export: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mpid-job: wrote %d spans to %s (open in chrome://tracing)\n\n%s",
		len(rep.Spans), path, rep.Timeline(100))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mpid-job: %v\n", err)
	os.Exit(1)
}
