// Command mpid-job runs a MapReduce job over a local text file on either
// execution engine in this repository:
//
//	mpid-job -job wordcount -input corpus.txt            # MPI-D engine
//	mpid-job -job wordcount -input corpus.txt -engine hadoop
//	mpid-job -job grep -pattern 'mpi.*d' -input corpus.txt
//	mpid-job -job sort -input records.txt
//
// Jobs:
//
//	wordcount  (word, count) over whitespace-separated words
//	grep       lines matching -pattern, keyed by byte offset
//	sort       lines sorted lexicographically (range-partitioned)
//
// Output goes to stdout as key<TAB>value lines, like Hadoop's text output.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
)

func main() {
	jobName := flag.String("job", "wordcount", "job: wordcount, grep or sort")
	input := flag.String("input", "", "input text file (required)")
	engine := flag.String("engine", "mpid", "execution engine: mpid or hadoop")
	pattern := flag.String("pattern", "", "regexp for -job grep")
	reducers := flag.Int("reducers", 2, "reduce task count")
	mappers := flag.Int("mappers", runtime.GOMAXPROCS(0), "mapper count (mpid engine) / tasktrackers (hadoop engine)")
	blockKB := flag.Int("block", 256, "split size in KB")
	top := flag.Int("top", 0, "print only the first N output pairs (0 = all)")
	flag.Parse()

	if *input == "" {
		fatal(fmt.Errorf("-input is required"))
	}
	text, err := os.ReadFile(*input)
	if err != nil {
		fatal(err)
	}

	job, err := buildJob(*jobName, *pattern, *reducers)
	if err != nil {
		fatal(err)
	}
	splits := mapred.SplitText(text, *blockKB<<10)

	var result *mapred.Result
	switch *engine {
	case "mpid":
		result, err = mapred.Run(job, splits, *mappers)
	case "hadoop":
		result, err = hadoop.Run(job, splits, hadoop.Config{NumTrackers: *mappers})
	default:
		err = fmt.Errorf("unknown engine %q (want mpid or hadoop)", *engine)
	}
	if err != nil {
		fatal(err)
	}

	pairs := result.Pairs()
	fmt.Fprintf(os.Stderr, "mpid-job: %s on %s engine: %d splits, %d output pairs\n",
		*jobName, *engine, len(splits), len(pairs))
	for i, p := range pairs {
		if *top > 0 && i == *top {
			break
		}
		if *jobName == "wordcount" {
			n, _, err := kv.ReadVLong(p.Value)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\t%d\n", p.Key, n)
			continue
		}
		fmt.Printf("%s\t%s\n", p.Key, p.Value)
	}
}

// buildJob assembles the requested job.
func buildJob(name, pattern string, reducers int) (mapred.Job, error) {
	switch name {
	case "wordcount":
		reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
			var total int64
			for _, v := range values {
				n, _, err := kv.ReadVLong(v)
				if err != nil {
					return err
				}
				total += n
			}
			return emit(key, kv.AppendVLong(nil, total))
		})
		return mapred.Job{
			Name: name,
			Mapper: mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
				for _, w := range bytes.Fields(line) {
					if err := emit(w, kv.AppendVLong(nil, 1)); err != nil {
						return err
					}
				}
				return nil
			}),
			Reducer:     reducer,
			Combiner:    mapred.CombinerFromReducer(reducer),
			NumReducers: reducers,
		}, nil

	case "grep":
		if pattern == "" {
			return mapred.Job{}, fmt.Errorf("-job grep needs -pattern")
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return mapred.Job{}, fmt.Errorf("bad -pattern: %w", err)
		}
		return mapred.Job{
			Name: name,
			Mapper: mapred.MapperFunc(func(offset, line []byte, emit mapred.Emit) error {
				if re.Match(line) {
					off, _, err := kv.ReadVLong(offset)
					if err != nil {
						return err
					}
					return emit([]byte(fmt.Sprintf("%012d", off)), line)
				}
				return nil
			}),
			Reducer: mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
				for _, v := range values {
					if err := emit(key, v); err != nil {
						return err
					}
				}
				return nil
			}),
			NumReducers: reducers,
		}, nil

	case "sort":
		identity := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
			for _, v := range values {
				if err := emit(key, v); err != nil {
					return err
				}
			}
			return nil
		})
		return mapred.Job{
			Name: name,
			Mapper: mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
				return emit(line, nil)
			}),
			Reducer:     identity,
			Partitioner: core.FirstByteRangePartitioner,
			NumReducers: reducers,
		}, nil
	}
	return mapred.Job{}, fmt.Errorf("unknown job %q (want wordcount, grep or sort)", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mpid-job: %v\n", err)
	os.Exit(1)
}
