// Command mpid-report runs every experiment in the paper's evaluation —
// Figure 1, Table I, Figure 2 (a, b, c), Figure 3 and Figure 6 — and
// prints one consolidated report with the paper's published values beside
// each measurement. EXPERIMENTS.md is produced from this output.
//
// -quick caps the cluster-scale experiments at small inputs for a fast
// smoke run; the default reproduces the full paper scale (150 GB Table I
// rows, 100 GB Figure 6 sweep) and takes a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ict-repro/mpid/internal/experiments"
	"github.com/ict-repro/mpid/internal/netmodel"
)

func main() {
	quick := flag.Bool("quick", false, "small-input smoke run")
	live := flag.Bool("live", false, "also measure the real substrates on loopback")
	flag.Parse()

	fig1GB, table1Max, fig6Max := int64(150), int64(150), int64(100)
	if *quick {
		fig1GB, table1Max, fig6Max = 4, 9, 10
	}

	start := time.Now()
	fmt.Printf("mpid-report: reproducing the evaluation of \"Can MPI Benefit Hadoop and MapReduce Applications?\" (ICPP 2011)\n\n")

	for _, panel := range []experiments.SizeRange{experiments.Small, experiments.Medium, experiments.Large} {
		rows, err := experiments.Figure2(panel, experiments.Model)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFigure2(panel, experiments.Model, rows))
	}

	rows3, err := experiments.Figure3(experiments.Model)
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.RenderFigure3(experiments.Model, rows3))

	if *live {
		for _, panel := range []experiments.SizeRange{experiments.Small, experiments.Medium} {
			rows, err := experiments.Figure2(panel, experiments.Live)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderFigure2(panel, experiments.Live, rows))
		}
		rowsL, err := experiments.Figure3(experiments.Live)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFigure3(experiments.Live, rowsL))
	}

	fmt.Println(experiments.RenderFigure1(experiments.Figure1(fig1GB * netmodel.GB)))
	fmt.Println(experiments.RenderTable1(experiments.Table1(table1Max)))
	fmt.Println(experiments.RenderFigure6(experiments.Figure6(fig6Max)))
	fmt.Println(experiments.RenderInterconnects(experiments.ExtensionInterconnects(fig6Max)))

	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mpid-report: %v\n", err)
	os.Exit(1)
}
