// Command mpid-bandwidth regenerates Figure 3: bandwidth achieved moving
// 128 MB through Hadoop RPC, HTTP-over-Jetty and MPI while sweeping the
// packet size from 1 B to 64 MB, plus the raw-TCP series the paper lists as
// future work (§VI(1)).
//
// By default it evaluates the calibrated cost models; with -live it
// measures the real Go substrates on loopback, and -transport selects
// the live MPI transport (chan, ring, ring+copy, tcp, or the default
// tcp+writev).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ict-repro/mpid/internal/experiments"
)

func main() {
	live := flag.Bool("live", false, "measure the real Go substrates on loopback instead of the models")
	transport := flag.String("transport", "tcp+writev", "live MPI transport: chan | ring | ring+copy | tcp | tcp+writev")
	flag.Parse()

	mode := experiments.Model
	if *live {
		mode = experiments.Live
	}
	rows, err := experiments.Figure3Transport(mode, *transport)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpid-bandwidth: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(experiments.RenderFigure3(mode, rows))
}
