// Command mpid-trace validates a Chrome trace-event JSON file (as written
// by `mpid-job -trace` or `mpid-shuffle -live -trace`) and prints its
// statistics: event and span counts, process lanes, and trace duration.
// It checks what chrome://tracing would choke on — the document
// unmarshals, timestamps are non-negative and durations well-formed, and
// every duration event is a complete "X" (or a matched B/E pair).
//
//	mpid-trace out.json
//
// Exit status 0 means the file will load; 1 means it will not, with the
// reason on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ict-repro/mpid/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mpid-trace FILE.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpid-trace:", err)
		os.Exit(1)
	}
	st, err := trace.ValidateChrome(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpid-trace: %s is not a loadable trace: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok — %d events, %d spans, %d process lanes, %s span\n",
		path, st.Events, st.Spans, st.Procs, st.Duration)
}
