// Command mpid-latency regenerates Figure 2: point-to-point latency of
// Hadoop RPC vs MPI across message sizes (panels a: 1 B-1 KB, b: 1 KB-1 MB,
// c: 1 MB-64 MB).
//
// By default it evaluates the calibrated cost models, reproducing the
// paper's GigE-testbed numbers. With -live it measures the repository's
// real Go substrates (internal/mpi, internal/hadooprpc) on loopback
// instead; -transport selects the live MPI transport (chan, ring,
// ring+copy, tcp, or the default tcp+writev).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ict-repro/mpid/internal/experiments"
)

func main() {
	rng := flag.String("range", "all", "size range: small, medium, large or all")
	live := flag.Bool("live", false, "measure the real Go substrates on loopback instead of the models")
	transport := flag.String("transport", "tcp+writev", "live MPI transport: chan | ring | ring+copy | tcp | tcp+writev")
	flag.Parse()

	mode := experiments.Model
	if *live {
		mode = experiments.Live
	}
	var panels []experiments.SizeRange
	switch *rng {
	case "small":
		panels = []experiments.SizeRange{experiments.Small}
	case "medium":
		panels = []experiments.SizeRange{experiments.Medium}
	case "large":
		panels = []experiments.SizeRange{experiments.Large}
	case "all":
		panels = []experiments.SizeRange{experiments.Small, experiments.Medium, experiments.Large}
	default:
		fmt.Fprintf(os.Stderr, "mpid-latency: unknown range %q\n", *rng)
		os.Exit(2)
	}
	for _, panel := range panels {
		rows, err := experiments.Figure2Transport(panel, mode, *transport)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpid-latency: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderFigure2(panel, mode, rows))
	}
}
