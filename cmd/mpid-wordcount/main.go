// Command mpid-wordcount regenerates Figure 6: WordCount execution time on
// simulated Hadoop vs the simulated MPI-D system (7 worker nodes, 49
// mapper processes, 1 reducer) across input sizes from 1 GB up.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ict-repro/mpid/internal/experiments"
)

func main() {
	maxGB := flag.Int64("max", 100, "largest input size in GB")
	interconnects := flag.Bool("interconnects", false, "also project MPI-D onto 10GigE and InfiniBand (§VI(4))")
	live := flag.Bool("live", false, "also run the live engine comparison: real mini-Hadoop vs real MPI-D on this machine")
	coded := flag.Bool("coded", false, "also sweep coded-shuffle map replication r=1,2,3 (shipped-bytes extension)")
	flag.Parse()

	rows := experiments.Figure6(*maxGB)
	fmt.Println(experiments.RenderFigure6(rows))
	if *coded {
		fmt.Println(experiments.RenderFigure6Coded(experiments.Figure6Coded(*maxGB, []int{1, 2, 3})))
	}
	if *interconnects {
		fmt.Println(experiments.RenderInterconnects(experiments.ExtensionInterconnects(*maxGB)))
	}
	if *live {
		liveRows, err := experiments.Figure6Live([]int64{256 << 10, 1 << 20, 4 << 20, 16 << 20})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpid-wordcount: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderFigure6Live(liveRows))
	}
}
