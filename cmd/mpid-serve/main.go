// Command mpid-serve runs the mini-Hadoop engine as a long-lived
// multi-tenant job service: a daemon that accepts WordCount-class job
// submissions over the Hadoop-style RPC wire, schedules them fairly
// across tenants under bounded admission, probes each running job's
// tasktrackers for liveness, and drains gracefully on SIGTERM.
//
// Daemon mode (the default):
//
//	mpid-serve -addr 127.0.0.1:9070 -admin 127.0.0.1:9071
//
// serves the JobServiceProtocol on -addr and, when -admin is set, the
// observability endpoints (/metrics, /metrics.prom, /trace.json,
// /timeline, /jobs, /events, /healthz, /series, /series.json,
// /debug/pprof/) on -admin: -events sizes the flight-recorder ring and
// -sample paces the time-series sampler behind /series.json. SIGTERM or
// SIGINT starts a graceful drain: no new admissions, queued and running
// jobs finish, and anything still unfinished after -drain is canceled.
//
// Client mode, against a running daemon:
//
//	mpid-serve -connect 127.0.0.1:9070 -submit wordcount -tenant alice \
//	    -params bytes=65536,reducers=2
//	mpid-serve -connect 127.0.0.1:9070 -stats
//
// -submit submits the named workload and waits for completion, printing
// the job id, outcome, latency, and output digest; a saturated service
// is retried after its own RetryAfter hint until admitted. -stats prints
// the service snapshot as JSON.
package main

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/ict-repro/mpid/internal/admin"
	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/obs"
	"github.com/ict-repro/mpid/internal/serve"
)

func main() {
	// Daemon flags.
	addr := flag.String("addr", "127.0.0.1:9070", "daemon: RPC listen address")
	adminAddr := flag.String("admin", "", "daemon: admin HTTP listen address (empty = no admin server)")
	slots := flag.Int("slots", 4, "daemon: concurrent-job slots")
	queue := flag.Int("queue", 64, "daemon: admission queue depth")
	trackers := flag.Int("trackers", 2, "daemon: tasktrackers per job")
	heartbeat := flag.Duration("heartbeat", 0, "daemon: tracker heartbeat interval (0 = engine default)")
	probeEvery := flag.Duration("probe-interval", 0, "daemon: liveness probe pacing (0 = prober default)")
	probeDead := flag.Int("probe-dead", 0, "daemon: consecutive probe losses before a dead verdict (0 = prober default)")
	noProbe := flag.Bool("no-probe", false, "daemon: disable active liveness probing")
	drain := flag.Duration("drain", 30*time.Second, "daemon: graceful drain budget on SIGTERM")
	eventCap := flag.Int("events", obs.DefaultEventCap, "daemon: flight-recorder ring capacity")
	sample := flag.Duration("sample", time.Second, "daemon: metrics time-series sampling interval")

	// Client flags.
	connect := flag.String("connect", "", "client: daemon address to connect to (enables client mode)")
	submit := flag.String("submit", "", "client: submit this workload and wait (e.g. wordcount)")
	tenant := flag.String("tenant", "default", "client: tenant to submit as")
	params := flag.String("params", "", "client: workload parameters, e.g. bytes=65536,reducers=2")
	stats := flag.Bool("stats", false, "client: print the service stats snapshot")
	timeout := flag.Duration("timeout", 10*time.Minute, "client: total per-call budget (covers the blocking wait)")
	flag.Parse()

	if *connect != "" {
		if err := runClient(*connect, *submit, *tenant, *params, *stats, *timeout); err != nil {
			fail(err)
		}
		return
	}
	if err := runDaemon(*addr, *adminAddr, *slots, *queue, *trackers, *heartbeat,
		*probeEvery, *probeDead, *noProbe, *drain, *eventCap, *sample); err != nil {
		fail(err)
	}
}

func runDaemon(addr, adminAddr string, slots, queue, trackers int, heartbeat,
	probeEvery time.Duration, probeDead int, noProbe bool, drain time.Duration,
	eventCap int, sample time.Duration) error {
	rec := obs.NewRecorder(eventCap)
	svc := serve.New(serve.Config{
		Slots:      slots,
		QueueDepth: queue,
		Probe: serve.ProbeConfig{
			Interval:  probeEvery,
			DeadAfter: probeDead,
			Disable:   noProbe,
		},
		Cluster: hadoop.Config{
			NumTrackers: trackers,
			Heartbeat:   heartbeat,
		},
		Events: rec,
	})
	srv := hadooprpc.NewServer()
	srv.Register(serve.NewProtocol(svc, serve.NewWorkloads()))
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("mpid-serve: serving %s v%d on %s (%d slots, %d queue)\n",
		serve.ProtocolName, serve.ProtocolVersion, bound, slots, queue)

	if adminAddr != "" {
		cfg := serve.DefaultSeries()
		cfg.Interval = sample
		smp := obs.NewSampler(svc.Metrics(), cfg)
		smp.Start()
		defer smp.Stop()
		extras := []admin.Page{
			{Path: "/jobs", Handler: jobsPage(svc)},
			admin.EventsPage(rec),
			admin.HealthPage(svc.Health()),
		}
		extras = append(extras, admin.SeriesPages(smp)...)
		adm, err := admin.New(adminAddr, svc.Metrics(), svc.Tracer(), extras...)
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Printf("mpid-serve: admin on http://%s (/metrics /metrics.prom /trace.json /timeline /jobs /events /healthz /series /series.json /debug/pprof/)\n", adm.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Printf("mpid-serve: %s received, draining (budget %s)\n", got, drain)
	if err := svc.Drain(drain); err != nil {
		fmt.Printf("mpid-serve: drain incomplete: %v\n", err)
	} else {
		fmt.Println("mpid-serve: drained cleanly")
	}
	st := svc.Stats()
	fmt.Printf("mpid-serve: lifetime done=%d failed=%d rejected=%d\n", st.Done, st.Failed, st.Rejected)
	return nil
}

// jobsPage renders the retained job table: the service-level view the
// per-job admin endpoints cannot give.
func jobsPage(svc *serve.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		jobs := svc.Jobs()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%-6s %-12s %-18s %-8s %12s  %s\n", "ID", "TENANT", "NAME", "STATE", "LATENCY-MS", "ERROR")
		for _, j := range jobs {
			lat := ""
			if j.Latency > 0 {
				lat = fmt.Sprintf("%.1f", j.Latency)
			}
			fmt.Fprintf(w, "%-6d %-12s %-18s %-8s %12s  %s\n", j.ID, j.Tenant, j.Name, j.State, lat, j.Error)
		}
	}
}

func runClient(addr, submit, tenant, params string, stats bool, timeout time.Duration) error {
	c, err := serve.DialService(addr, hadooprpc.Options{CallTimeout: timeout})
	if err != nil {
		return err
	}
	defer c.Close()

	if stats {
		st, err := c.Stats()
		if err != nil {
			return err
		}
		body, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(body))
	}
	if submit == "" {
		if !stats {
			return errors.New("client mode wants -submit and/or -stats")
		}
		return nil
	}

	args, err := parseParams(params)
	if err != nil {
		return err
	}
	start := time.Now()
	var id int64
	for {
		id, err = c.Submit(tenant, submit, args)
		if err == nil {
			break
		}
		var sat *serve.SaturatedError
		if !errors.As(err, &sat) {
			return err
		}
		fmt.Printf("mpid-serve: saturated (%d/%d queued), retrying in %s\n", sat.Queued, sat.Depth, sat.RetryAfter)
		time.Sleep(sat.RetryAfter)
	}
	fmt.Printf("mpid-serve: job %d submitted as %q, waiting\n", id, tenant)
	res, err := c.Wait(id)
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("job %d failed: %s", id, res.ErrMsg)
	}
	fmt.Printf("mpid-serve: job %d done in %s (client wall %s)\n", id, res.Duration.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))
	fmt.Printf("mpid-serve: output digest %s\n", hex.EncodeToString(res.Digest))
	return nil
}

// parseParams turns "bytes=65536,reducers=2" into workload parameters.
func parseParams(s string) (map[string]int64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int64)
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad parameter %q (want key=value)", part)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter %q: %w", part, err)
		}
		out[key] = n
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mpid-serve: %v\n", err)
	os.Exit(1)
}
