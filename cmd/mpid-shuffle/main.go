// Command mpid-shuffle regenerates the paper's §II.A shuffle-overhead
// study on the Hadoop simulator:
//
//	-fig1    Figure 1: per-reducer copy/sort/reduce time distribution for
//	         the JavaSort benchmark (default 150 GB, 8/8 slots, 2345
//	         reduce tasks).
//	-table1  Table I: copy-stage share of total task time across input
//	         sizes {1,3,9,27,81,150} GB and slot configs {4/2,4/4,8/8,16/16}.
//	-live    additionally runs a real WordCount on the live mini-Hadoop
//	         engine and prints the jobtracker's measured per-reducer
//	         copy/sort/reduce report next to the simulated copy share.
//
// Both simulated studies run by default. -max caps the Table I sweep and
// -size sets the Figure 1 input, so quick runs are possible on small
// machines. -livekb sets the live run's input size.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ict-repro/mpid/internal/experiments"
	"github.com/ict-repro/mpid/internal/netmodel"
)

func main() {
	fig1 := flag.Bool("fig1", false, "run only Figure 1")
	table1 := flag.Bool("table1", false, "run only Table I")
	live := flag.Bool("live", false, "also run the live-engine WordCount and print its measured phase report")
	sizeGB := flag.Int64("size", 150, "Figure 1 input size in GB")
	maxGB := flag.Int64("max", 150, "largest Table I input size in GB")
	liveKB := flag.Int64("livekb", 256, "live run input size in KB")
	traceFile := flag.String("trace", "", "with -live: write a Chrome trace-event JSON of the run to this file")
	adminAddr := flag.String("admin", "", "with -live: serve /metrics, /trace.json, /timeline and pprof on this address during the run")
	flag.Parse()

	if (*traceFile != "" || *adminAddr != "") && !*live {
		fmt.Fprintln(os.Stderr, "mpid-shuffle: -trace and -admin only apply to -live runs")
		os.Exit(2)
	}

	runFig1 := *fig1 || !*table1
	runTable1 := *table1 || !*fig1

	if runFig1 {
		r := experiments.Figure1(*sizeGB * netmodel.GB)
		fmt.Println(experiments.RenderFigure1(r))
	}
	if runTable1 {
		cells := experiments.Table1(*maxGB)
		fmt.Println(experiments.RenderTable1(cells))
	}
	if *live {
		r, err := experiments.Figure1LiveAt(*liveKB<<10, *adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpid-shuffle:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderFigure1Live(r))
		if *traceFile != "" {
			data, err := r.Report.ChromeTrace()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpid-shuffle: trace export:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*traceFile, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "mpid-shuffle:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mpid-shuffle: wrote %d spans to %s (open in chrome://tracing)\n",
				len(r.Report.Spans), *traceFile)
		}
	}
}
