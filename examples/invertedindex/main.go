// Inverted index: a second domain-specific MapReduce application on the
// real MPI-D runtime — the classic search-engine workload the MapReduce
// paper motivates.
//
// Mappers emit (word, documentID) for every word of every document;
// reducers receive each word's full posting list (merged across mappers by
// MPI-D's grouped receive), deduplicate and sort it, and emit the postings.
//
//	go run ./examples/invertedindex
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

func main() {
	// Synthesize a corpus of documents; each split is one document, and
	// the split ID is the document ID.
	const docs = 24
	vocab := workload.NewVocabulary(400, 11)
	var splits []mapred.Split
	for d := 0; d < docs; d++ {
		gen := workload.NewTextGenerator(vocab, 1.3, int64(100+d))
		splits = append(splits, mapred.NewLineSplit(d, gen.BytesOfText(4<<10)))
	}

	// docSplit wraps LineSplit so the mapper sees (docID, line) records.
	// The framework passes the byte offset as key; we re-key by document
	// using a split-aware wrapper.
	indexed := make([]mapred.Split, len(splits))
	for i, s := range splits {
		indexed[i] = &docSplit{Split: s, doc: i}
	}

	mapper := mapred.MapperFunc(func(docID, line []byte, emit mapred.Emit) error {
		for _, w := range bytes.Fields(line) {
			if err := emit(w, docID); err != nil {
				return err
			}
		}
		return nil
	})

	// The reducer deduplicates document IDs and emits a sorted posting
	// list for the word.
	reducer := mapred.ReducerFunc(func(word []byte, values [][]byte, emit mapred.Emit) error {
		seen := make(map[string]bool)
		var ids []int
		for _, v := range values {
			if seen[string(v)] {
				continue
			}
			seen[string(v)] = true
			id, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		sort.Ints(ids)
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = strconv.Itoa(id)
		}
		return emit(word, []byte(strings.Join(parts, ",")))
	})

	job := mapred.Job{
		Name:        "inverted-index",
		Mapper:      mapper,
		Reducer:     reducer,
		NumReducers: 4,
	}
	result, err := mapred.Run(job, indexed, 6)
	if err != nil {
		log.Fatalf("invertedindex: %v", err)
	}

	index := result.Pairs()
	fmt.Printf("indexed %d documents: %d distinct terms\n", docs, len(index))
	// Show the widest posting lists.
	sort.Slice(index, func(i, j int) bool {
		return strings.Count(string(index[i].Value), ",") > strings.Count(string(index[j].Value), ",")
	})
	fmt.Println("terms appearing in the most documents:")
	for i := 0; i < 5 && i < len(index); i++ {
		fmt.Printf("  %-20s -> [%s]\n", index[i].Key, index[i].Value)
	}
}

// docSplit re-keys a split's records with its document ID.
type docSplit struct {
	mapred.Split
	doc int
}

// Records implements mapred.Split.
func (d *docSplit) Records(yield func(key, value []byte) error) error {
	docID := []byte(strconv.Itoa(d.doc))
	return d.Split.Records(func(_, line []byte) error {
		return yield(docID, line)
	})
}
