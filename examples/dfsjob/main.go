// DFS job: the complete Hadoop-shaped pipeline on real components — write
// input into the miniature HDFS (block placement + replication), run a
// WordCount over per-block splits with TextInputFormat record-boundary
// semantics on the MPI-D runtime, survive a datanode failure mid-way, and
// write the result back into the file system. A second pass then runs the
// same job on the live Hadoop engine while a tasktracker is crashed
// mid-job, showing task re-execution recover the lost work end-to-end.
//
//	go run ./examples/dfsjob
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"time"

	"github.com/ict-repro/mpid/internal/dfs"
	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

func main() {
	// An 8-node DFS, 16 KB blocks (scaled-down 64 MB), 3-way replication.
	nn, err := dfs.NewCluster(8, dfs.Config{BlockSize: 16 << 10, Replication: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest ~1 MB of text.
	vocab := workload.NewVocabulary(3_000, 21)
	text := workload.NewTextGenerator(vocab, 1.2, 22).BytesOfText(1 << 20)
	w, err := nn.Create("/jobs/wordcount/input.txt")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Write(text); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := nn.Stat("/jobs/wordcount/input.txt")
	fmt.Printf("ingested %d bytes into %d blocks across %d datanodes\n",
		info.Size, info.Blocks, nn.DataNodeCount())

	// Kill a datanode: replication must carry the job.
	nn.DataNode(2).Fail()
	fmt.Printf("datanode 2 failed; %d blocks under-replicated, job proceeds on replicas\n",
		len(nn.UnderReplicated()))

	splits, err := mapred.DFSSplits(nn, "/jobs/wordcount/input.txt")
	if err != nil {
		log.Fatal(err)
	}

	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		for _, word := range bytes.Fields(line) {
			if err := emit(word, kv.AppendVLong(nil, 1)); err != nil {
				return err
			}
		}
		return nil
	})
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		var total int64
		for _, v := range values {
			n, _, err := kv.ReadVLong(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit(key, kv.AppendVLong(nil, total))
	})

	result, err := mapred.Run(mapred.Job{
		Name:        "dfs-wordcount",
		Mapper:      mapper,
		Reducer:     reducer,
		Combiner:    mapred.CombinerFromReducer(reducer),
		NumReducers: 4,
	}, splits, 6)
	if err != nil {
		log.Fatal(err)
	}

	// Write each reducer's output as a part file, Hadoop-style.
	var totalWords int64
	for r, pairs := range result.ByReducer {
		out, err := nn.Create(fmt.Sprintf("/jobs/wordcount/output/part-r-%05d", r))
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pairs {
			n, _, err := kv.ReadVLong(p.Value)
			if err != nil {
				log.Fatal(err)
			}
			totalWords += n
			fmt.Fprintf(out, "%s\t%d\n", p.Key, n)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("job done: %d map tasks, %d distinct words, %d total words\n",
		result.MapTasks, len(result.Pairs()), totalWords)
	fmt.Printf("outputs: %v\n", nn.List()[1:])

	// Read one part file back to show the round trip.
	r, err := nn.Open("/jobs/wordcount/output/part-r-00000")
	if err != nil {
		log.Fatal(err)
	}
	head, err := io.ReadAll(r)
	if err != nil {
		log.Fatal(err)
	}
	lines := bytes.SplitN(head, []byte("\n"), 4)
	fmt.Println("part-r-00000 head:")
	for i := 0; i < 3 && i < len(lines); i++ {
		fmt.Printf("  %s\n", lines[i])
	}

	// Second pass: the same job on the live Hadoop engine (RPC heartbeats
	// + HTTP shuffle), with tasktracker 1 of 3 crashed mid-job by the
	// fault injector. The jobtracker declares it lost, re-executes its
	// maps (whose shuffle outputs died with it) on the survivors, and the
	// reducers are redirected to the replacement copies.
	fmt.Println("\nlive engine rerun with a tasktracker crash mid-job:")
	inj := faults.New(1, faults.Rule{
		Component: "hadoop.tracker1",
		Operation: "heartbeat",
		After:     8, // dies on its 9th heartbeat, with work in flight
		Action:    faults.Crash,
	})
	slowMapper := mapred.MapperFunc(func(k, line []byte, emit mapred.Emit) error {
		time.Sleep(2 * time.Millisecond) // keep maps in flight at crash time
		return mapper.Map(k, line, emit)
	})
	liveRes, err := hadoop.Run(mapred.Job{
		Name:        "dfs-wordcount-live",
		Mapper:      slowMapper,
		Reducer:     reducer,
		Combiner:    mapred.CombinerFromReducer(reducer),
		NumReducers: 4,
	}, splits, hadoop.Config{
		NumTrackers:    3,
		Injector:       inj,
		TrackerTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	match := len(liveRes.Pairs()) == len(result.Pairs())
	for i, p := range liveRes.Pairs() {
		q := result.Pairs()[i]
		if !match || !bytes.Equal(p.Key, q.Key) || !bytes.Equal(p.Value, q.Value) {
			match = false
			break
		}
	}
	fmt.Printf("tracker 1 crashed: %v; max executions of one task: %d (re-execution %d attempts)\n",
		inj.Crashed("hadoop.tracker1"), liveRes.MaxTaskExecutions, liveRes.FailedAttempts)
	fmt.Printf("live output identical to MPI-D run despite the crash: %v\n", match)
}
