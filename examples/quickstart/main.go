// Quickstart: WordCount on the real MPI-D runtime.
//
// This is the paper's Figure 5 example, run end-to-end on the actual
// library (not the simulator): the mapred framework spins up an in-process
// MPI world with a rank-0 master, mapper ranks and reducer ranks; mappers
// emit (word, 1) pairs through MPI_D_Send; the MPI-D library buffers them
// in a hash table, combines counts locally, realigns them into contiguous
// partitions and ships them to the reducers; reducers drain MPI_D_Recv and
// sum.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

func main() {
	// Generate ~2 MB of Zipf-distributed text, the WordCount workload.
	vocab := workload.NewVocabulary(5_000, 42)
	text := workload.NewTextGenerator(vocab, 1.15, 7).BytesOfText(2 << 20)

	// The map function of the paper's Figure 5: parse the record, send
	// (word, 1) for every word.
	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		for _, word := range bytes.Fields(line) {
			if err := emit(word, kv.AppendVLong(nil, 1)); err != nil {
				return err
			}
		}
		return nil
	})

	// The reduce function: sum the value list — also used as the combiner,
	// "always assigned as the reduce function".
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		var total int64
		for _, v := range values {
			n, _, err := kv.ReadVLong(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit(key, kv.AppendVLong(nil, total))
	})

	job := mapred.Job{
		Name:        "quickstart-wordcount",
		Mapper:      mapper,
		Reducer:     reducer,
		Combiner:    mapred.CombinerFromReducer(reducer),
		NumReducers: 3,
	}

	// 64 KB "blocks" stand in for HDFS blocks; 4 concurrent mappers.
	result, err := mapred.Run(job, mapred.SplitText(text, 64<<10), 4)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	// Decode and show the most frequent words.
	type wc struct {
		word  string
		count int64
	}
	var counts []wc
	for _, p := range result.Pairs() {
		n, _, err := kv.ReadVLong(p.Value)
		if err != nil {
			log.Fatalf("quickstart: bad count: %v", err)
		}
		counts = append(counts, wc{string(p.Key), n})
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].count > counts[j].count })

	fmt.Printf("WordCount over %d KB of text: %d map tasks, %d distinct words\n",
		len(text)>>10, result.MapTasks, len(counts))
	fmt.Printf("MPI-D counters: %d pairs sent, %d combined away, %d spills, %d messages, %d bytes shuffled\n",
		result.MapCounters.PairsSent, result.MapCounters.PairsCombined,
		result.MapCounters.Spills, result.MapCounters.MessagesSent, result.MapCounters.BytesSent)
	fmt.Println("top 10 words:")
	for i, c := range counts {
		if i == 10 {
			break
		}
		fmt.Printf("  %-20s %d\n", c.word, c.count)
	}
}
