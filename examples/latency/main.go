// Latency: the paper's §II.B methodology run live on this machine — a
// ping-pong between two ranks of the internal/mpi runtime over real TCP
// sockets and a Hadoop RPC echo client/server, timed exactly as the paper
// does (ping-pong divided by two, first iterations dropped).
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/mpi"
)

const (
	warmup = 5
	reps   = 100 // the paper averages 100 tests
)

func main() {
	sizes := []int64{1, 16, 256, 1 << 10, 16 << 10, 256 << 10, 1 << 20}

	// MPI over TCP: rank 1 echoes, rank 0 measures.
	world, err := mpi.NewTCPWorld(2)
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	go func() {
		c1 := world.Comm(1)
		for {
			data, st, err := c1.Recv(0, mpi.AnyTag)
			if err != nil || st.Tag == 1 {
				return
			}
			if err := c1.Send(0, 0, data); err != nil {
				return
			}
		}
	}()
	c0 := world.Comm(0)

	// Hadoop RPC echo.
	srv := hadooprpc.NewServer()
	srv.Register(hadooprpc.NewEchoProtocol())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	// Explicit timeouts keep a wedged server from hanging the benchmark:
	// a connect must land within 2 s and no single echo may take > 10 s.
	cli, err := hadooprpc.DialOptions(addr, hadooprpc.EchoProtocolName, hadooprpc.EchoProtocolVersion,
		hadooprpc.Options{DialTimeout: 2 * time.Second, CallTimeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	fmt.Printf("%-10s %14s %14s %8s\n", "size", "MPI (1-way)", "RPC (1-way)", "ratio")
	for _, size := range sizes {
		payload := make([]byte, size)

		var mpiTotal time.Duration
		for i := 0; i < reps+warmup; i++ {
			start := time.Now()
			if err := c0.Send(1, 0, payload); err != nil {
				log.Fatal(err)
			}
			if _, _, err := c0.Recv(1, 0); err != nil {
				log.Fatal(err)
			}
			if i >= warmup {
				mpiTotal += time.Since(start)
			}
		}
		mpiLat := mpiTotal / time.Duration(2*reps)

		var rpcTotal time.Duration
		for i := 0; i < reps+warmup; i++ {
			start := time.Now()
			if _, err := cli.Call("recv", payload); err != nil {
				log.Fatal(err)
			}
			if i >= warmup {
				rpcTotal += time.Since(start)
			}
		}
		rpcLat := rpcTotal / time.Duration(2*reps)

		fmt.Printf("%-10d %14v %14v %7.2fx\n", size, mpiLat, rpcLat,
			float64(rpcLat)/float64(mpiLat))
	}
	c0.Send(1, 1, nil) // stop the echo rank
}
