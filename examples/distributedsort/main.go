// Distributed sort: the JavaSort/GridMix workload of the paper's §II.A,
// run on the real MPI-D runtime.
//
// Identity map, identity reduce, and a range partitioner (instead of the
// hash-mod default) so that concatenating the reducers' outputs in reducer
// order yields a globally sorted sequence — the TeraSort recipe. The range
// boundaries are sampled from the input (core.SampleCuts), so partitions
// stay balanced whatever the key distribution looks like. MPI-D's
// SortValues option is switched on to demonstrate the §IV.A on-demand
// value sorting during realignment.
//
//	go run ./examples/distributedsort
package main

import (
	"fmt"
	"log"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

func main() {
	const records = 100_000
	gen := workload.NewSortGenerator(2026)
	var pairs []kv.Pair
	for _, r := range gen.Records(records) {
		pairs = append(pairs, kv.Pair{Key: r.Key, Value: r.Value})
	}

	// Four splits of uneven size, as HDFS blocks would be.
	splits := []mapred.Split{
		mapred.NewPairSplit(0, pairs[:20_000]),
		mapred.NewPairSplit(1, pairs[20_000:55_000]),
		mapred.NewPairSplit(2, pairs[55_000:90_000]),
		mapred.NewPairSplit(3, pairs[90_000:]),
	}

	identityMap := mapred.MapperFunc(func(k, v []byte, emit mapred.Emit) error {
		return emit(k, v)
	})
	identityReduce := mapred.ReducerFunc(func(k []byte, values [][]byte, emit mapred.Emit) error {
		for _, v := range values {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	})

	// Sample every 50th key for the range boundaries, as TeraSort samples
	// its input before launching the job.
	var sample [][]byte
	for i := 0; i < len(pairs); i += 50 {
		sample = append(sample, pairs[i].Key)
	}

	job := mapred.Job{
		Name:        "distributed-sort",
		Mapper:      identityMap,
		Reducer:     identityReduce,
		Partitioner: core.RangePartitioner(core.SampleCuts(sample, 8)),
		NumReducers: 8,
		SortValues:  true,
	}
	result, err := mapred.Run(job, splits, 4)
	if err != nil {
		log.Fatalf("distributedsort: %v", err)
	}

	// Concatenate reducer outputs in order and verify global order.
	var out []kv.Pair
	for _, rp := range result.ByReducer {
		out = append(out, rp...)
	}
	if len(out) != records {
		log.Fatalf("distributedsort: %d records out, want %d", len(out), records)
	}
	inversions := 0
	for i := 1; i < len(out); i++ {
		if kv.Compare(out[i-1].Key, out[i].Key) > 0 {
			inversions++
		}
	}
	fmt.Printf("sorted %d records of %d bytes across %d reducers\n",
		records, gen.RecordSize(), job.NumReducers)
	fmt.Printf("global order violations: %d\n", inversions)
	fmt.Printf("first key: %q  last key: %q\n", out[0].Key, out[len(out)-1].Key)
	fmt.Printf("shuffled %d bytes in %d messages over %d spills\n",
		result.MapCounters.BytesSent, result.MapCounters.MessagesSent, result.MapCounters.Spills)
	if inversions > 0 {
		log.Fatal("distributedsort: output is not globally sorted")
	}
}
