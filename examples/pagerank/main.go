// PageRank: iterative MapReduce on the MPI-D runtime.
//
// The paper's related work (§V) discusses Twister, a runtime for iterative
// MapReduce; this example shows the same class of workload on MPI-D: each
// iteration is one MapReduce job whose output feeds the next. The map
// function distributes a vertex's rank over its outgoing links; the reduce
// function sums incoming contributions and applies the damping factor.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/ict-repro/mpid/internal/mapred"
)

const (
	vertices   = 2_000
	avgDegree  = 8
	damping    = 0.85
	iterations = 12
)

// graph[v] lists v's outgoing neighbours.
func buildGraph(seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	g := make([][]int, vertices)
	for v := range g {
		// Preferential-attachment-flavoured degrees: hubs exist.
		deg := 1 + rng.Intn(2*avgDegree)
		seen := make(map[int]bool, deg)
		for len(g[v]) < deg {
			u := rng.Intn(vertices)
			if u == v || seen[u] {
				continue
			}
			seen[u] = true
			g[v] = append(g[v], u)
		}
	}
	return g
}

// record encodes one vertex as a line: "v rank n1 n2 n3 ...".
func record(v int, rank float64, links []int) string {
	parts := make([]string, 0, len(links)+2)
	parts = append(parts, strconv.Itoa(v), strconv.FormatFloat(rank, 'g', 17, 64))
	for _, u := range links {
		parts = append(parts, strconv.Itoa(u))
	}
	return strings.Join(parts, " ")
}

func main() {
	graph := buildGraph(4)

	// Initial state: uniform ranks.
	lines := make([]string, vertices)
	for v := range graph {
		lines[v] = record(v, 1.0/vertices, graph[v])
	}

	// map: emit (neighbour, contribution) for each link, plus the vertex's
	// own adjacency so reduce can rebuild the state record.
	mapper := mapred.MapperFunc(func(_, value []byte, emit mapred.Emit) error {
		fields := strings.Fields(string(value))
		if len(fields) < 2 {
			return nil
		}
		v := fields[0]
		rank, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return err
		}
		links := fields[2:]
		// Re-emit structure under its own key, marked with "L:".
		if err := emit([]byte(v), []byte("L:"+strings.Join(links, " "))); err != nil {
			return err
		}
		if len(links) == 0 {
			return nil
		}
		share := rank / float64(len(links))
		contribution := []byte("R:" + strconv.FormatFloat(share, 'g', 17, 64))
		for _, u := range links {
			if err := emit([]byte(u), contribution); err != nil {
				return err
			}
		}
		return nil
	})

	// reduce: sum contributions, apply damping, reattach adjacency.
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		var sum float64
		links := ""
		for _, val := range values {
			s := string(val)
			switch {
			case strings.HasPrefix(s, "R:"):
				r, err := strconv.ParseFloat(s[2:], 64)
				if err != nil {
					return err
				}
				sum += r
			case strings.HasPrefix(s, "L:"):
				links = s[2:]
			}
		}
		rank := (1-damping)/vertices + damping*sum
		out := string(key) + " " + strconv.FormatFloat(rank, 'g', 17, 64)
		if links != "" {
			out += " " + links
		}
		return emit(key, []byte(out))
	})

	for iter := 0; iter < iterations; iter++ {
		input := []byte(strings.Join(lines, "\n") + "\n")
		result, err := mapred.Run(mapred.Job{
			Name:        fmt.Sprintf("pagerank-iter-%d", iter),
			Mapper:      mapper,
			Reducer:     reducer,
			NumReducers: 4,
		}, mapred.SplitText(input, 16<<10), 4)
		if err != nil {
			log.Fatalf("pagerank iteration %d: %v", iter, err)
		}
		pairs := result.Pairs()
		if len(pairs) != vertices {
			log.Fatalf("iteration %d produced %d vertices, want %d", iter, len(pairs), vertices)
		}
		next := make([]string, 0, vertices)
		var total float64
		for _, p := range pairs {
			next = append(next, string(p.Value))
			fields := strings.Fields(string(p.Value))
			r, _ := strconv.ParseFloat(fields[1], 64)
			total += r
		}
		lines = next
		fmt.Printf("iteration %2d: rank mass = %.6f\n", iter+1, total)
	}

	// Report the top-ranked vertices.
	type vr struct {
		v    int
		rank float64
	}
	var ranks []vr
	for _, line := range lines {
		fields := strings.Fields(line)
		v, _ := strconv.Atoi(fields[0])
		r, _ := strconv.ParseFloat(fields[1], 64)
		ranks = append(ranks, vr{v, r})
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].rank > ranks[j].rank })
	fmt.Println("top 5 vertices:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  v%-6d rank %.6f\n", ranks[i].v, ranks[i].rank)
	}

	// Sanity: rank mass must be near 1 minus the mass leaked to dangling
	// contributions (this graph has no dangling vertices).
	var mass float64
	for _, r := range ranks {
		mass += r.rank
	}
	if math.Abs(mass-1) > 0.05 {
		log.Fatalf("rank mass diverged: %f", mass)
	}
}
